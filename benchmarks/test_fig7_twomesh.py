"""Fig 7: normalized 2MESH execution times.

Paper shape: "for the three problems tested our prototype imposes
minimal (<= 3%) overhead over the baseline without MPI Sessions
support", attributed to the Ibarrier+nanosleep quiescence emulation.
P1/P2 run 256 processes, P3 runs 1,024, fully subscribing 32-core
Trinity nodes.  (P3 runs only with --paper-full: it simulates 1,024
ranks.)
"""

from repro.bench import figures


def test_fig7(run_figure, quick):
    res = run_figure(figures.fig7, quick)
    for problem, norm in res.series["Sessions/Baseline"].points:
        assert 1.0 < norm < 1.035, f"{problem}: normalized time {norm}"

"""Supplementary bench (not a paper figure): collective latency under
sessions vs baseline communicators.

The paper measures pt2pt and application behavior; this closes the loop
for collectives — after the exCID switch the collective data paths are
identical, so sessions-derived communicators show baseline collective
latency.
"""

import pytest

from repro.bench.osu import osu_collective

COLLECTIVES = ["allreduce", "bcast", "barrier", "allgather", "alltoall"]


@pytest.mark.parametrize("op_name", COLLECTIVES)
def test_sessions_collectives_match_baseline(benchmark, op_name):
    base = osu_collective("world", op_name)
    sess = benchmark.pedantic(
        osu_collective, args=("sessions", op_name), rounds=1, iterations=1
    )
    for size in base:
        ratio = sess[size] / base[size]
        print(f"{op_name} size={size}: sessions/baseline = {ratio:.3f}")
        assert 0.9 < ratio < 1.1, (op_name, size, ratio)


def test_collective_latency_grows_with_size(benchmark):
    lat = benchmark.pedantic(
        osu_collective, args=("world", "allreduce"),
        kwargs={"sizes": (8, 65536)}, rounds=1, iterations=1,
    )
    assert lat[65536] > lat[8]


def test_collective_latency_grows_with_scale(benchmark):
    small = osu_collective("world", "barrier", nodes=2, ppn=4)
    large = benchmark.pedantic(
        osu_collective, args=("world", "barrier"),
        kwargs={"nodes": 8, "ppn": 4}, rounds=1, iterations=1,
    )
    assert large[0] > small[0]

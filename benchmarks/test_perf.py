"""Engine fast-path wall-clock benches (the ISSUE's >= 2x acceptance bar).

Marked ``bench`` and living under ``benchmarks/`` — not part of tier-1
(``testpaths = ["tests"]``).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf.py -p no:cacheprovider

A tiny regression guard from the same kernels does run in tier-1:
``tests/bench/test_perf_smoke.py``.
"""

from __future__ import annotations

import pytest

from repro.bench.perf import (CASES, PARTITIONED_CASES, run_case,
                              run_partitioned_case)

pytestmark = pytest.mark.bench

_KERNELS = [c for c in CASES if c.min_speedup is not None]
_FULL_STACK = [c for c in CASES if c.min_speedup is None]


@pytest.mark.parametrize("case", _KERNELS, ids=lambda c: c.name)
def test_kernel_speedup_bar(case, benchmark):
    """Scheduler-bound kernels must beat compat by their acceptance bar."""
    rec = benchmark.pedantic(
        run_case, args=(case,), kwargs=dict(repeats=3), rounds=1, iterations=1
    )
    if rec["speedup"] < case.min_speedup:
        # A loaded machine can squeeze one side of the comparison;
        # re-measure once before calling it a regression.
        rec = run_case(case, repeats=3)
    benchmark.extra_info.update(
        speedup=round(rec["speedup"], 3),
        fast_eps=round(rec["fast_eps"]),
        compat_eps=round(rec["compat_eps"]),
    )
    assert rec["events"] > 0
    assert rec["speedup"] >= case.min_speedup, (
        f"{case.name}: {rec['speedup']:.2f}x < required {case.min_speedup}x "
        f"(fast {rec['fast_eps']:,.0f} ev/s vs compat {rec['compat_eps']:,.0f})"
    )


@pytest.mark.parametrize("case", _FULL_STACK, ids=lambda c: c.name)
def test_full_stack_no_regression(case, benchmark):
    """End-to-end scenarios: fast path must not be slower than compat by
    more than measurement noise (they are app-layer bound, so the
    speedup is diluted toward 1x — tracked, not barred)."""
    rec = benchmark.pedantic(
        run_case, args=(case,), kwargs=dict(quick=True, repeats=3),
        rounds=1, iterations=1,
    )
    if rec["speedup"] < 0.7:
        rec = run_case(case, quick=True, repeats=3)
    benchmark.extra_info["speedup"] = round(rec["speedup"], 3)
    assert rec["events"] > 0
    assert rec["speedup"] >= 0.7


@pytest.mark.parametrize("case", PARTITIONED_CASES, ids=lambda c: c.name)
def test_partitioned_speedup_bar(case, benchmark):
    """Partitioned cases: the >=2x bar is a real-parallelism claim, so
    it binds only when the host has at least ``partitions`` cores; on
    smaller hosts the speedup is recorded and the equivalence check
    (identical event counts) still gates."""
    rec = benchmark.pedantic(
        run_partitioned_case, args=(case,),
        kwargs=dict(quick=True, repeats=2), rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        speedup=round(rec["speedup"], 3),
        cores=rec["cores"], windows=rec["windows"],
        boundary_msgs=rec["boundary_msgs"],
    )
    assert rec["events"] > 0
    if rec["enforced"]:
        assert rec["speedup"] >= case.min_speedup, (
            f"{case.name}: {rec['speedup']:.2f}x < required "
            f"{case.min_speedup}x on a {rec['cores']}-core host"
        )

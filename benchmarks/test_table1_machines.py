"""Table I: the hardware/software models used throughout the study."""

from repro.bench import figures
from repro.machine.presets import jupiter, trinity


def test_table1(run_figure):
    res = run_figure(figures.table1)
    text = "\n".join(res.notes)
    assert "Trinity" in text
    assert "Jupiter" in text


def test_table1_core_counts(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Table I: Trinity 2x16-core, Jupiter 2x14-core.
    assert trinity(1).cores_per_node == 32
    assert jupiter(1).cores_per_node == 28


def test_table1_aries_like_network(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Both systems use Aries: low single-digit-us inter-node latency.
    for machine in (trinity(1), jupiter(1)):
        assert machine.inter_node_latency < 3e-6
        assert machine.inter_node_bandwidth > 5e9

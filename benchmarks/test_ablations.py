"""Ablation benches for the design choices called out in DESIGN.md §4."""

from repro.bench import figures


def test_dup_policy_amortization(run_figure):
    """Subfield derivation amortizes the PGCID over 255 dups (§III-B3)."""
    res = run_figure(figures.ablation_dup_policy)
    s = res.series["per-iteration dup time"]
    pgcid = s.y_at("pgcid-per-dup")
    subfield = s.y_at("subfield")
    assert subfield < pgcid / 2, (
        f"subfield ({subfield}) should amortize far below pgcid-per-dup ({pgcid})"
    )


def test_fragmentation_hurts_consensus_not_excid(run_figure):
    """§IV-C2: CID-space fragmentation degrades the consensus algorithm
    while the exCID generator is immune."""
    res = run_figure(figures.ablation_fragmentation)
    s = res.series["per-iteration dup time"]
    assert s.y_at("consensus/fragmented") > 1.5 * s.y_at("consensus/clean")
    excid_delta = s.y_at("excid/fragmented") / s.y_at("excid/clean")
    assert 0.9 < excid_delta < 1.1


def test_hierarchical_grpcomm_beats_flat(run_figure):
    """§III-A: the three-stage hierarchy scales better than a flat
    all-to-all among servers."""
    res = run_figure(figures.ablation_grpcomm)
    tree = res.series["tree (hierarchical)"]
    flat = res.series["flat all-to-all"]
    biggest = tree.xs()[-1]
    assert flat.y_at(biggest) > tree.y_at(biggest)


def test_local_cid_switch_pays_off(run_figure):
    """§III-B4: forcing extended headers on every message costs
    measurable message rate at small sizes."""
    res = run_figure(figures.ablation_handshake)
    ratios = res.series["forced-extended / normal message rate"]
    assert ratios.points[0][1] < 0.9


def test_eager_limit_crossover(run_figure):
    """Rendezvous hurts mid-size messages; large sizes are insensitive."""
    res = run_figure(figures.ablation_eager_limit)
    small_limit = res.series["eager_limit=256"]
    big_limit = res.series["eager_limit=65536"]
    # At 4 KiB the small-limit config is already in rendezvous: slower.
    assert small_limit.y_at(4096) < big_limit.y_at(4096)
    # At 1 MiB both are rendezvous-bound: equal.
    assert small_limit.y_at(1048576) == big_limit.y_at(1048576)

"""Fig 6: HPCC 8-byte random/natural ring latency.

Paper shape: "the latencies obtained using sessions are practically
identical to what is achieved using the unmodified application and the
baseline Open MPI" — for both ring orderings.  The sessions run keeps
MPI_Init for the application and opens a session only inside the
latency/bandwidth component (the compartmentalization demo).
"""

from repro.bench import figures
from repro.bench.hpcc import hpcc_ring_latency


def test_fig6a_random_ring(run_figure, quick):
    res = run_figure(figures.fig6a, quick)
    for x, ratio in res.ratio("Sessions", "MPI_Init"):
        assert 0.95 < ratio < 1.05, f"nodes={x}: random-ring ratio {ratio}"


def test_fig6b_natural_ring(run_figure, quick):
    res = run_figure(figures.fig6b, quick)
    for x, ratio in res.ratio("Sessions", "MPI_Init"):
        assert 0.95 < ratio < 1.05, f"nodes={x}: natural-ring ratio {ratio}"


def test_random_ring_slower_than_natural(benchmark):
    """Random ordering crosses nodes on almost every hop."""
    natural = hpcc_ring_latency(2, 28, "world", "natural")
    rand = benchmark.pedantic(
        hpcc_ring_latency, args=(2, 28, "world", "random"), rounds=1, iterations=1
    )
    assert rand > 1.3 * natural

"""Shared helpers for the partitioned-simulation (repro.dsim) suite.

Every test here asserts the dsim contract: running one world across N
forked worker partitions is *bit-equivalent* to running it in one
process — same per-rank results, final clock, event totals, layer
counters, soak digests, and canonically-normalized Perfetto traces,
including under partition-safe fault plans.

The suite carries the ``dsim`` marker; the small-scale parity cases run
in tier-1 as the dsim smoke, the 4-partition and multi-seed sweeps are
``slow``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs import export


def trace_bytes(tracer) -> str:
    """Canonically-normalized Chrome-trace serialization.

    ``canonical_chrome_trace`` strips the merged trace's ``p{k}:`` track
    namespacing, re-lays-out pids/tids, renumbers flow ids by content
    and drops partition-dependent arg keys — the normalization under
    which partitioned and single-process traces must agree byte-exactly.
    """
    return export.dumps(
        export.canonical_chrome_trace(export.chrome_trace(tracer)))


def metric_counters(metrics, *, skip_dsim: bool = True) -> Dict[Any, Any]:
    """Counters + gauges as plain dicts, minus dsim's own meters.

    ``dsim.window.advance`` / ``dsim.boundary.msgs`` only exist on the
    partitioned side (they meter the machinery itself), so equality is
    asserted over everything else.
    """
    def keep(key) -> bool:
        name = key[0] if isinstance(key, tuple) else key
        return not (skip_dsim and str(name).startswith("dsim."))

    return {
        "counters": {k: v for k, v in metrics.counters.items() if keep(k)},
        "gauges": {k: v for k, v in metrics.gauges.items() if keep(k)},
    }

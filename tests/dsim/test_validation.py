"""Partitionability validation: every unsafe input must refuse loudly.

The alternative to each of these errors is a run that *silently
diverges* from the single-process reference — the one failure mode the
dsim contract cannot tolerate.
"""

from __future__ import annotations

import pytest

from repro import dsim
from repro.api import SimSpec
from repro.dsim import PartitionError, PartitionMap, validate_plan
from repro.machine.presets import laptop
from repro.simtime.faults import FaultPlan
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.dsim


def _noop(mpi):
    yield from mpi.mpi_init()
    yield from mpi.mpi_finalize()


def test_more_partitions_than_nodes_rejected():
    spec = SimSpec(nprocs=4, machine=laptop(num_nodes=2), ppn=2,
                   partitions=3)
    with pytest.raises(PartitionError):
        dsim.run_partitioned(spec, _noop)


def test_spec_tracer_rejected():
    spec = SimSpec(nprocs=4, machine=laptop(num_nodes=2), ppn=2,
                   partitions=2, tracer=Tracer())
    with pytest.raises(PartitionError, match="traced=True"):
        dsim.run_partitioned(spec, _noop)


def test_after_count_kill_rejected():
    plan = FaultPlan().kill_proc(1, after_count=5)
    with pytest.raises(PartitionError):
        validate_plan(plan, 2)


def test_unpinned_message_action_rejected():
    plan = FaultPlan().drop_msg(prob=0.1, seed=1)
    with pytest.raises(PartitionError):
        validate_plan(plan, 2)


def test_pinned_message_action_accepted():
    plan = FaultPlan()
    plan.lossy_link(0.1, seed=1, layer="rml", src=0, at_time=0.01)
    plan.kill_proc(1, at_time=0.02)
    validate_plan(plan, 2)          # must not raise
    validate_plan(None, 4)          # no plan is always safe


def test_faults_drop_scenario_rejected():
    from repro.obs.scenarios import run_scenario

    with pytest.raises(PartitionError):
        run_scenario("faults-drop", nodes=4, ppn=2, partitions=2)


def test_engine_compat_rejected():
    from repro.obs.scenarios import run_scenario

    with pytest.raises(PartitionError):
        run_scenario("fig3-init", nodes=4, ppn=2, partitions=2,
                     engine_compat=True)


def test_partition_map_is_contiguous_by_node():
    pmap = PartitionMap(3, 8)
    owners = [pmap.node_partition(n) for n in range(8)]
    assert owners == sorted(owners)
    assert set(owners) == {0, 1, 2}
    assert owners[0] == 0                   # HNP stays in partition 0
    for pid in range(3):
        assert [pmap.node_partition(n) for n in pmap.nodes_of(pid)] \
            == [pid] * len(pmap.nodes_of(pid))

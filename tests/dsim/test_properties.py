"""Property: cross-partition injection reproduces the global send order.

The boundary ships every envelope with an ``origin`` key
``(send_time, src_pid, seq)``; the receiving worker injects sorted by
``(arrival, origin)``.  These properties pin down why that is enough
to reproduce the single-engine execution order:

* the sort is a *total* order (origins are unique), so injection order
  is independent of how envelopes were batched into windows or in what
  order partitions drained them;
* an engine that receives same-instant callbacks in that order runs
  them in that order (stable FIFO within a timestamp), matching the
  single-process engine where the sender's ``call_at`` sequence — i.e.
  the global send order — decides ties.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.simtime.engine import Engine

pytestmark = pytest.mark.dsim

# (arrival, (send_time, src_pid, seq)) with arrivals drawn from a tiny
# grid so same-instant collisions — the interesting case — are common.
_envelopes = st.lists(
    st.tuples(
        st.sampled_from([1e-6, 2e-6, 3e-6]),
        st.tuples(st.sampled_from([1e-7, 2e-7]),
                  st.integers(0, 3),
                  st.integers(0, 50)),
    ),
    min_size=1, max_size=24,
    unique_by=lambda e: e[1],       # origins are globally unique
)


def _key(env):
    return (env[0], env[1])


@given(envs=_envelopes, seed=st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_injection_order_is_batching_invariant(envs, seed):
    """Any shuffle (= any window batching / drain interleaving) sorts
    back to the same total injection order."""
    shuffled = list(envs)
    seed.shuffle(shuffled)
    assert sorted(shuffled, key=_key) == sorted(envs, key=_key)


@given(envs=_envelopes)
@settings(max_examples=100, deadline=None)
def test_engine_executes_sorted_arrivals_in_origin_order(envs):
    """Scheduling the sorted envelopes on a real engine executes them
    in exactly the sorted sequence — including same-instant ties."""
    engine = Engine()
    executed = []
    ordered = sorted(envs, key=_key)
    for env in ordered:
        engine.call_at(env[0], lambda e=env: executed.append(e))
    engine.run()
    assert executed == ordered


@given(envs=_envelopes, seed=st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_single_engine_order_equals_partitioned_injection_order(envs, seed):
    """The reference: one engine fed in global send order (origin order,
    as the serial sender's call_at sequence would be) executes the same
    sequence as an engine fed the shuffled-then-sorted envelopes."""
    serial = Engine()
    serial_exec = []
    for env in sorted(envs, key=lambda e: e[1]):    # global send order
        serial.call_at(env[0], lambda e=env: serial_exec.append(e))
    serial.run()

    shuffled = list(envs)
    seed.shuffle(shuffled)
    part = Engine()
    part_exec = []
    for env in sorted(shuffled, key=_key):
        part.call_at(env[0], lambda e=env: part_exec.append(e))
    part.run()

    assert part_exec == serial_exec

"""Soak-digest parity under the fault matrix — the hardest parity bar.

A partition-safe chaos plan (timed kills, src-pinned lossy links, node
kills) injected into a partitioned run must reproduce the serial soak
record *including its sha256 digest*: same deaths, same revokes, same
retransmit counters, same event totals.
"""

from __future__ import annotations

import pytest

from repro.dsim import PartitionError
from repro.recovery import soak_plan, soak_run

pytestmark = [pytest.mark.dsim, pytest.mark.recovery]


def test_soak_digest_parity_p2_seed0():
    serial = soak_run(0, partition_safe=True)
    part = soak_run(0, partitions=2, partition_safe=True)
    assert part == serial  # full record: digest, deaths, counters, events


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("partitions", [2, 4])
def test_soak_digest_parity_matrix(seed, partitions):
    serial = soak_run(seed, partition_safe=True)
    part = soak_run(seed, partitions=partitions, partition_safe=True)
    assert part == serial


def test_default_plan_is_rejected():
    # The default soak plan uses after_count kills and un-pinned message
    # actions, which cannot be replicated deterministically across
    # partitions; the run must refuse, not silently diverge.
    with pytest.raises(PartitionError):
        soak_run(0, partitions=2)


def test_partition_safe_plan_is_deterministic():
    def shape(plan):
        return [(a.kind, a.rank, a.node, a.src, a.layer, a.at_time)
                for a in plan.actions]

    assert shape(soak_plan(7, num_ranks=8, num_nodes=4, partition_safe=True)) \
        == shape(soak_plan(7, num_ranks=8, num_nodes=4, partition_safe=True))

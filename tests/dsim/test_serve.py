"""Serve-layer partitioned execution: same record, same digest.

``SimSpec.partitions`` rides inside the ``sim`` scenario's payload, so
a served request, a batch sweep and a direct call must all agree —
cache identity included — no matter how many worker processes computed
the answer.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve import ServeClient, ServerThread
from repro.serve.registry import run_simspec, run_simspec_traced
from repro.api import SimSpec
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig

pytestmark = [pytest.mark.dsim, pytest.mark.serve]


def _payload(partitions: int, program: str = "allreduce") -> dict:
    config = (MpiConfig.sessions_prototype() if program == "sessions"
              else None)
    return SimSpec(nprocs=8, machine=laptop(num_nodes=4), ppn=2,
                   partitions=partitions, config=config).to_payload()


@pytest.mark.parametrize("program", ["allreduce", "sessions"])
def test_sim_scenario_digest_parity(program):
    serial = run_simspec(spec=_payload(1, program), program=program, seed=3)
    part = run_simspec(spec=_payload(2, program), program=program, seed=3)
    # partitions is an execution detail: everything observable in the
    # record except nprocs bookkeeping must match, digest first.
    assert part["digest"] == serial["digest"]
    assert part["results"] == serial["results"]
    assert part["t_end"] == serial["t_end"]


def test_served_request_runs_partitioned(tmp_path):
    # Through the real server and its *daemonic* pool workers — the
    # in-process tests above never fork, so only this path proves a
    # worker may spawn dsim children (pool._worker_main clears the
    # child-side daemon flag).
    with ServerThread(workers=1, cache_dir=str(tmp_path)) as srv:
        with ServeClient(srv.address) as client:
            serial = client.submit("sim", {"spec": _payload(1), "seed": 5})
            part = client.submit("sim", {"spec": _payload(2), "seed": 5})
    assert serial["status"] == "ok"
    assert part["status"] == "ok", part.get("error")
    assert part["result"]["digest"] == serial["result"]["digest"]
    assert part["result"]["results"] == serial["result"]["results"]


def test_sim_scenario_traced_digest_parity(tmp_path):
    trace = tmp_path / "part.json"
    serial = run_simspec(spec=_payload(1), program="allreduce", seed=0)
    part = run_simspec_traced(spec=_payload(2), program="allreduce",
                              seed=0, trace_path=str(trace))
    assert part["digest"] == serial["digest"]
    assert os.path.getsize(trace) > 0
    obj = json.loads(trace.read_text())
    assert obj["traceEvents"]

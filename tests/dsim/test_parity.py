"""Partitioned-vs-serial parity: results, traces, metrics.

The core bit-equivalence bar from the partitioned-worlds design: for
every observable a user can export, ``partitions=N`` must be
indistinguishable from one process.
"""

from __future__ import annotations

import pytest

from repro import dsim
from repro.api import SimSpec, make_world
from repro.machine.presets import jupiter, laptop
from repro.obs.scenarios import run_scenario, scenario_names
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM

from .conftest import metric_counters, trace_bytes

pytestmark = pytest.mark.dsim


def _allreduce_main(mpi, seed: int):
    world = yield from mpi.mpi_init()
    total = yield from world.allreduce(world.rank + seed, op=SUM)
    yield from mpi.mpi_finalize()
    return total


def _serial_reference(spec: SimSpec, main, args=()):
    world = make_world(spec=spec)
    procs = world.spawn_ranks(main, args)
    t_end = world.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    return [p.result for p in procs], t_end, world.cluster.engine.events_executed


@pytest.mark.parametrize("preset", [laptop, jupiter])
def test_allreduce_results_and_clock_match(preset):
    spec = SimSpec(nprocs=8, machine=preset(num_nodes=4), ppn=2)
    results, t_end, events = _serial_reference(spec, _allreduce_main, (3,))

    res = dsim.run_partitioned(spec.replace(partitions=2),
                               _allreduce_main, args=(3,))
    res.raise_first_failure()
    assert res.result_list(spec.nprocs) == results
    assert res.t_end == t_end
    assert res.events == events
    assert res.windows > 0


def test_partitions_one_is_inprocess_bypass():
    # partitions=1 must never enter the dsim machinery: the same spec
    # through the ordinary path is the definition of the reference.
    spec = SimSpec(nprocs=4, machine=laptop(num_nodes=2), ppn=2)
    results, t_end, _ = _serial_reference(spec, _allreduce_main, (0,))
    again, t_again, _ = _serial_reference(spec, _allreduce_main, (0,))
    assert (results, t_end) == (again, t_again)


def test_sessions_program_matches():
    def main(mpi, seed: int):
        session = yield from mpi.session_init()
        group = yield from session.group_from_pset("mpi://world")
        comm = yield from mpi.comm_create_from_group(group, f"t-{seed}")
        total = yield from comm.allreduce(comm.rank + seed, op=SUM)
        comm.free()
        yield from session.finalize()
        return total

    spec = SimSpec(nprocs=8, machine=jupiter(num_nodes=4), ppn=2,
                   config=MpiConfig.sessions_prototype())
    results, t_end, events = _serial_reference(spec, main, (1,))
    res = dsim.run_partitioned(spec.replace(partitions=4), main, args=(1,))
    res.raise_first_failure()
    assert res.result_list(spec.nprocs) == results
    assert (res.t_end, res.events) == (t_end, events)


@pytest.mark.parametrize("name", ["fig3-init", "pingpong"])
def test_scenario_trace_and_metrics_parity_p2(name):
    serial = run_scenario(name, nodes=4, ppn=2)
    part = run_scenario(name, nodes=4, ppn=2, partitions=2)
    assert trace_bytes(part.tracer) == trace_bytes(serial.tracer)
    assert metric_counters(part.metrics) == metric_counters(serial.metrics)
    assert part.t_end == serial.t_end


@pytest.mark.slow
@pytest.mark.parametrize("name", [n for n in scenario_names()
                                  if n != "faults-drop"])
@pytest.mark.parametrize("partitions", [2, 4])
def test_all_scenarios_trace_parity(name, partitions):
    serial = run_scenario(name, nodes=4, ppn=2)
    part = run_scenario(name, nodes=4, ppn=2, partitions=partitions)
    assert trace_bytes(part.tracer) == trace_bytes(serial.tracer)
    assert metric_counters(part.metrics) == metric_counters(serial.metrics)


def test_track_namespacing_in_merged_trace():
    # Before normalization the merged trace names tracks "p{k}:..." so
    # per-partition timelines stay distinguishable in Perfetto.
    from repro.obs import export

    part = run_scenario("fig3-init", nodes=4, ppn=2, partitions=2)
    raw = export.chrome_trace(part.tracer)
    names = {ev["args"]["name"] for ev in raw["traceEvents"]
             if ev.get("ph") == "M" and ev.get("name") == "thread_name"}
    assert any(n.startswith("p0:") for n in names)
    assert any(n.startswith("p1:") for n in names)

"""The unified ``python -m repro`` CLI: dispatch, shims, fleet loadgen."""

import json
import subprocess
import sys

from repro.serve import FleetThread


def run_cli(*args, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, cwd=".",
    )


class TestDispatch:
    def test_no_args_prints_usage(self):
        proc = run_cli()
        assert proc.returncode == 0
        for name in ("figure", "recovery", "chaos", "faults", "bench",
                     "obs", "serve"):
            assert name in proc.stdout

    def test_unknown_subcommand_exits_2(self):
        proc = run_cli("frobnicate")
        assert proc.returncode == 2
        assert "unknown subcommand" in proc.stderr

    def test_figure_list_matches_legacy_tool(self):
        new = run_cli("figure", "--list")
        old = subprocess.run(
            [sys.executable, "tools/run_figure.py", "--list"],
            capture_output=True, text=True, timeout=600, cwd=".")
        assert new.returncode == old.returncode == 0
        assert new.stdout == old.stdout

    def test_faults_list(self):
        proc = run_cli("faults", "--list")
        assert proc.returncode == 0
        assert "fence-kill" in proc.stdout

    def test_subcommand_help_exits_zero(self):
        for name in ("figure", "bench", "serve", "obs"):
            assert run_cli(name, "--help").returncode == 0


class TestShims:
    def test_tools_forward_to_cli_modules(self):
        # Each shim re-exports the package main, so flags/exit codes
        # cannot drift between the two entry points.
        import tools.bench
        import tools.obs_report
        import tools.run_chaos
        import tools.run_faults
        import tools.run_figure
        import tools.run_recovery
        import tools.serve
        from repro.cli import (bench, chaos, faults, figure, obs,
                               recovery, serve)

        assert tools.bench.main is bench.main
        assert tools.obs_report.main is obs.main
        assert tools.run_chaos.main is chaos.main
        assert tools.run_faults.main is faults.main
        assert tools.run_figure.main is figure.main
        assert tools.run_recovery.main is recovery.main
        assert tools.serve.main is serve.main


class TestServeLoadgenFleet:
    def test_loadgen_round_trips_against_a_live_fleet(self, tmp_path):
        """`python -m repro serve loadgen --addr ...` against a running
        2-shard fleet: the router is indistinguishable from a server."""
        out = tmp_path / "fleet_loadgen.json"
        with FleetThread(shards=2, workers=1, capacity=16) as fleet:
            proc = run_cli(
                "serve", "loadgen", "--addr", str(fleet.address),
                "--requests", "8", "--clients", "2", "--nprocs", "2",
                "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "req/s" in proc.stdout
        report = json.loads(out.read_text())
        assert report["target"] == str(fleet.address)
        assert report["loadgen"]["by_status"] == {"ok": 8}
        assert report["loadgen"]["client_errors"] == []

    def test_loadgen_self_hosts_a_fleet_with_shards_flag(self, tmp_path):
        out = tmp_path / "self_fleet.json"
        proc = run_cli(
            "serve", "loadgen", "--shards", "2", "--requests", "8",
            "--clients", "2", "--nprocs", "2", "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "fleet:" in proc.stdout
        report = json.loads(out.read_text())
        assert report["bench"] == "serve-fleet-loadgen"
        assert report["shards"] == 2
        assert report["loadgen"]["by_status"] == {"ok": 8}
        assert report["fleet"]["live"] == 2
        assert sum(report["fleet"]["routed"].values()) == 8

"""SimSpec: the unified run description (repro.api.SimSpec).

Covers the wire round-trip, the frozen/equality contract, the legacy-
kwargs deprecation shim, and spec-vs-legacy equivalence — including the
``run_mpi`` gap the old kwargs API had (``recovery``/``recovery_seed``/
``engine_compat`` were silently dropped).
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.api import SimSpec, make_world, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM


def _main(mpi):
    world = yield from mpi.mpi_init()
    total = yield from world.allreduce(world.rank, op=SUM)
    yield from mpi.mpi_finalize()
    return total


def _full_spec() -> SimSpec:
    return SimSpec(
        nprocs=4,
        machine=laptop(num_nodes=2),
        ppn=2,
        config=MpiConfig.sessions_prototype(),
        psets={"mpi://odd": [1, 3]},
        grpcomm_mode="flat",
        grpcomm_radix=3,
        recovery=True,
        recovery_seed=7,
        engine_compat=True,
    )


# ---------------------------------------------------------------------------
# the dataclass contract
# ---------------------------------------------------------------------------
class TestSimSpec:
    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimSpec(nprocs=2).nprocs = 4

    def test_needs_at_least_one_rank(self):
        with pytest.raises(ValueError, match="at least one rank"):
            SimSpec(nprocs=0)

    def test_psets_normalized_for_equality(self):
        a = SimSpec(nprocs=4, psets={"p": [0, 1]})
        b = SimSpec(nprocs=4, psets={"p": (0, 1)})
        assert a == b
        assert a.psets == {"p": (0, 1)}

    def test_replace(self):
        base = SimSpec(nprocs=2)
        bumped = base.replace(nprocs=8, recovery=True)
        assert (bumped.nprocs, bumped.recovery) == (8, True)
        assert base.nprocs == 2     # original untouched


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------
class TestPayloadRoundTrip:
    def test_round_trip_defaults(self):
        spec = SimSpec(nprocs=3)
        assert SimSpec.from_payload(spec.to_payload()) == spec

    def test_round_trip_full_through_json(self):
        spec = _full_spec()
        wire = json.dumps(spec.to_payload(), sort_keys=True)
        assert SimSpec.from_payload(json.loads(wire)) == spec

    def test_payload_is_canonical_json_stable(self):
        spec = _full_spec()
        canon = lambda p: json.dumps(p, sort_keys=True, separators=(",", ":"))
        assert canon(spec.to_payload()) == canon(spec.to_payload())

    def test_tracer_rejected_on_the_wire(self):
        spec = SimSpec(nprocs=2, tracer=object())
        with pytest.raises(ValueError, match="tracer"):
            spec.to_payload()
        with pytest.raises(ValueError, match="tracer"):
            SimSpec.from_payload({"nprocs": 2, "tracer": "x"})

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ValueError, match="nprcs"):
            SimSpec.from_payload({"nprcs": 2})


# ---------------------------------------------------------------------------
# the deprecation shim
# ---------------------------------------------------------------------------
class TestLegacyShim:
    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="SimSpec"):
            make_world(2, ppn=2)
        with pytest.warns(DeprecationWarning, match="SimSpec"):
            run_mpi(2, _main, grpcomm_mode="flat")

    def test_spec_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_world(spec=SimSpec(nprocs=2, ppn=2))
            run_mpi(SimSpec(nprocs=2), _main)

    def test_bare_nprocs_is_warning_free(self):
        # Plain make_world(4) never used the loose kwargs; no nagging.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_world(4)

    def test_spec_and_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            make_world(spec=SimSpec(nprocs=2), ppn=1)

    def test_spec_passed_twice_rejected(self):
        with pytest.raises(TypeError, match="twice"):
            make_world(SimSpec(nprocs=2), spec=SimSpec(nprocs=2))

    def test_nprocs_conflict_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            make_world(4, spec=SimSpec(nprocs=2))

    def test_missing_nprocs_rejected(self):
        with pytest.raises(TypeError, match="nprocs or a SimSpec"):
            make_world()


# ---------------------------------------------------------------------------
# spec vs legacy equivalence
# ---------------------------------------------------------------------------
class TestEquivalence:
    def test_make_world_spec_matches_legacy(self):
        spec = SimSpec(nprocs=4, machine=laptop(num_nodes=2), ppn=2,
                       config=MpiConfig.sessions_prototype(),
                       grpcomm_mode="flat")
        with pytest.warns(DeprecationWarning):
            legacy = make_world(4, machine=laptop(num_nodes=2), ppn=2,
                                config=MpiConfig.sessions_prototype(),
                                grpcomm_mode="flat")
        modern = make_world(spec=spec)
        assert modern.spec == legacy.spec == spec
        assert modern.num_ranks == legacy.num_ranks == 4
        assert [rt.rank_in_job for rt in modern.runtimes] \
            == [rt.rank_in_job for rt in legacy.runtimes]

    def test_run_mpi_results_identical(self):
        spec = SimSpec(nprocs=4, machine=laptop(num_nodes=2), ppn=2)
        with pytest.warns(DeprecationWarning):
            legacy = run_mpi(4, _main, machine=laptop(num_nodes=2), ppn=2)
        assert run_mpi(spec, _main) == legacy == [6, 6, 6, 6]

    def test_run_mpi_no_longer_drops_recovery_and_engine_flags(self):
        # The old kwargs API accepted but never forwarded these.
        spec = SimSpec(nprocs=2, recovery=True, recovery_seed=7,
                       engine_compat=True)
        _, world = run_mpi(spec, _main, return_world=True)
        assert world.cluster.recovery is True
        assert world.cluster.engine.compat is True
        # And the legacy spelling now reaches the cluster too.
        with pytest.warns(DeprecationWarning):
            _, world = run_mpi(2, _main, recovery=True, return_world=True)
        assert world.cluster.recovery is True

    def test_world_remembers_its_spec(self):
        spec = SimSpec(nprocs=2)
        assert make_world(spec=spec).spec is spec

"""Live telemetry through the serving stack (docs/observability.md).

The acceptance path: one ``sim`` request with telemetry enabled yields
a wall-clock Perfetto trace whose ``serve.request`` -> ``serve.queue``
-> ``serve.run`` spans share one trace id, the run span links to the
simulated-time trace the worker exported, the Prometheus snapshot
renders, and the run ledger holds the row — all byte-deterministic
modulo timestamps, and all costing nothing when telemetry is off.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import SimSpec
from repro.obs import (
    EventLog,
    LiveTelemetry,
    RunLedger,
    dumps,
    normalize_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.events import normalize_events
from repro.serve import ServeClient, ServerThread, run_simspec

pytestmark = pytest.mark.serve


def spans_named(tel, name):
    return [s for s in tel.tracer.spans.values() if s.name == name]


class TestEndToEnd:
    """One traced sim request, followed client -> server -> worker -> sim."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        td = tmp_path_factory.mktemp("tel")
        tel = LiveTelemetry()
        events = str(td / "events.jsonl")
        ledger = str(td / "ledger.sqlite")
        spec = SimSpec(nprocs=2)
        with ServerThread(workers=1, cache_dir=str(td / "cache"),
                          telemetry=tel, event_log=events, ledger=ledger,
                          trace_dir=str(td)) as srv:
            with ServeClient(srv.address, trace="cli") as client:
                first = client.submit(
                    "sim", {"spec": spec.to_payload(),
                            "program": "allreduce", "seed": 0})
                second = client.submit(        # identical -> cache hit
                    "sim", {"spec": spec.to_payload(),
                            "program": "allreduce", "seed": 0})
                prom = client.metrics()
        return dict(dir=td, tel=tel, events=events, ledger=ledger,
                    spec=spec, first=first, second=second, prom=prom)

    def test_responses_carry_the_client_minted_trace_id(self, traced):
        assert traced["first"]["status"] == "ok"
        assert traced["first"]["trace"] == "cli-1"
        assert traced["second"]["cached"] is True
        assert traced["second"]["trace"] == "cli-2"

    def test_spans_share_one_trace_id(self, traced):
        tel = traced["tel"]
        req = [s for s in spans_named(tel, "serve.request")
               if s.attrs["trace"] == "cli-1"]
        queue = [s for s in spans_named(tel, "serve.queue")
                 if s.attrs["trace"] == "cli-1"]
        run = [s for s in spans_named(tel, "serve.run")
               if s.attrs["trace"] == "cli-1"]
        assert len(req) == len(queue) == len(run) == 1
        # Topology: queue nests under request on the req track; the run
        # span lives on the worker track, joined by a dispatch flow.
        assert req[0].track == queue[0].track == "req:cli-1"
        assert queue[0].parent == req[0].sid
        assert run[0].track == "serve:worker/0"
        flows = [f for f in tel.tracer.flows.values()
                 if f.name == "serve.dispatch"
                 and f.attrs.get("trace") == "cli-1"]
        assert len(flows) == 1 and flows[0].complete
        assert flows[0].src_track == "req:cli-1"
        assert flows[0].dst_track == "serve:worker/0"
        assert req[0].attrs["status"] == "ok"

    def test_run_span_links_to_the_sim_time_trace(self, traced):
        run = [s for s in spans_named(traced["tel"], "serve.run")
               if s.attrs["trace"] == "cli-1"][0]
        sim_trace = run.attrs["sim_trace"]
        assert os.path.basename(sim_trace) == "sim-cli-1.json"
        obj = json.loads(open(sim_trace).read())
        assert validate_chrome_trace(obj) == []
        # It really is the simulated-time trace of this request: rank
        # tracks from the 2-proc world.
        threads = {e["args"]["name"] for e in obj["traceEvents"]
                   if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert any(t.startswith("rank:") for t in threads)

    def test_tracing_does_not_perturb_the_result(self, traced):
        """The served, traced result is byte-identical to a plain
        in-process run — telemetry is a pure side channel."""
        direct = run_simspec(traced["spec"], program="allreduce", seed=0)
        assert traced["first"]["result"] == direct
        assert traced["second"]["result"] == direct

    def test_cache_hit_is_visible_everywhere(self, traced):
        tel = traced["tel"]
        probes = [i for i in tel.tracer.instants
                  if i.name == "serve.cache.probe"]
        assert [p.attrs["result"] for p in probes] == ["miss", "hit"]
        hit_req = [s for s in spans_named(tel, "serve.request")
                   if s.attrs["trace"] == "cli-2"][0]
        assert hit_req.attrs["cached"] is True
        # The cache hit never reached the pool: one run span total.
        assert len(spans_named(tel, "serve.run")) == 1

    def test_prometheus_snapshot(self, traced):
        text = traced["prom"]["prometheus"]
        assert traced["prom"]["status"] == "ok"
        assert 'serve_requests{status="ok"} 2' in text
        assert 'serve_cache{result="hit"} 1' in text
        assert 'serve_cache{result="miss"} 1' in text
        assert "# TYPE serve_latency summary" in text

    def test_event_log_records_the_lifecycle(self, traced):
        events = EventLog.read(traced["events"])
        by_trace = [(e["event"], e.get("trace")) for e in events]
        assert ("serve.cache.miss", "cli-1") in by_trace
        assert ("serve.request.admitted", "cli-1") in by_trace
        assert ("serve.request.completed", "cli-1") in by_trace
        assert ("serve.cache.hit", "cli-2") in by_trace
        spawned = [e for e in events if e["event"] == "serve.worker.spawned"]
        assert spawned and spawned[0]["wid"] == 0

    def test_ledger_rows_for_both_requests(self, traced):
        with RunLedger(traced["ledger"]) as ledger:
            rows = ledger.query(kind="serve")
        assert [r["trace"] for r in rows] == ["cli-1", "cli-2"]
        fresh, hit = rows
        assert fresh["cached"] is False and hit["cached"] is True
        assert fresh["digest"] == hit["digest"] != ""
        assert fresh["trace_path"].endswith("sim-cli-1.json")
        assert fresh["wall_s"] > 0
        # The 12-char prefix the CLI prints is queryable.
        assert ledger.query(digest=fresh["digest"][:12])

    def test_wall_trace_written_at_stop(self, traced):
        path = traced["dir"] / "serve-trace.json"
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        names = {e["name"] for e in obj["traceEvents"] if e.get("ph") == "X"}
        assert {"serve.request", "serve.queue", "serve.run"} <= names


class TestDeterminism:
    def run_sequence(self, td):
        """Identical two-request sequence on a fresh server; returns the
        normalized wall trace and the normalized event log."""
        tel = LiveTelemetry()
        events = str(td / "events.jsonl")
        spec = SimSpec(nprocs=2)
        with ServerThread(workers=1, cache_dir=str(td / "cache"),
                          telemetry=tel, event_log=events) as srv:
            with ServeClient(srv.address, trace="cli") as client:
                for seed in (0, 0):          # second one hits the cache
                    r = client.submit("sim", {"spec": spec.to_payload(),
                                              "program": "allreduce",
                                              "seed": seed})
                    assert r["status"] == "ok"
        trace = normalize_chrome_trace(tel.export())
        return dumps(trace), normalize_events(EventLog.read(events),
                                              drop={"ts", "latency_s",
                                                    "wall_s", "pid"})

    def test_byte_deterministic_modulo_timestamps(self, tmp_path):
        """Two identical request sequences on two fresh servers export
        byte-identical traces and event logs once wall-clock fields are
        normalized away (the ISSUE's acceptance bar)."""
        trace_a, events_a = self.run_sequence(tmp_path / "a")
        trace_b, events_b = self.run_sequence(tmp_path / "b")
        assert trace_a == trace_b
        assert events_a == events_b


class TestWorkerDeathTelemetry:
    def test_death_and_retry_are_recorded(self, tmp_path):
        tel = LiveTelemetry()
        events = str(tmp_path / "events.jsonl")
        with ServerThread(workers=1, retry_limit=2, telemetry=tel,
                          event_log=events) as srv:
            with ServeClient(srv.address, trace="cli") as client:
                r = client.submit("flaky", {"state_dir": str(tmp_path),
                                            "crashes": 1, "value": 5})
        assert r["status"] == "ok" and r["attempts"] == 2
        runs = spans_named(tel, "serve.run")
        assert sorted(s.attrs["attempt"] for s in runs) == [1, 2]
        outcomes = {s.attrs["attempt"]: s.attrs["outcome"] for s in runs}
        assert outcomes == {1: "worker-died", 2: "ok"}
        names = [e["event"] for e in EventLog.read(events)]
        assert "serve.worker.died" in names
        assert "serve.request.retried" in names
        assert names.count("serve.worker.spawned") == 2


class TestAsyncClientTrace:
    def test_async_client_mints_trace_ids(self, tmp_path):
        import asyncio

        from repro.serve import AsyncServeClient

        tel = LiveTelemetry()
        with ServerThread(workers=1, telemetry=tel) as srv:
            async def go():
                client = await AsyncServeClient.connect(srv.address,
                                                        trace="ac")
                try:
                    return await client.submit("sleep", {"seconds": 0.0})
                finally:
                    await client.close()

            r = asyncio.run(go())
        assert r["status"] == "ok" and r["trace"] == "ac-1"
        assert spans_named(tel, "serve.request")[0].attrs["trace"] == "ac-1"


class TestServerFallbackTraceIds:
    def test_untraced_client_gets_server_minted_ids(self, tmp_path):
        tel = LiveTelemetry()
        with ServerThread(workers=1, telemetry=tel) as srv:
            with ServeClient(srv.address) as client:   # no trace=
                a = client.submit("sleep", {"seconds": 0.0})
                b = client.submit("sleep", {"seconds": 0.0})
        assert a["trace"] == "s-1" and b["trace"] == "s-2"


class TestTelemetryOff:
    def test_default_is_structurally_silent(self):
        """No telemetry attached -> no spans, no events, no ledger, no
        trace field on the wire, no meta through the worker pipe."""
        with ServerThread(workers=1) as srv:
            server = srv.server
            assert server.tel is None and server.events is None \
                and server.ledger is None
            with ServeClient(srv.address) as client:
                r = client.submit("sleep", {"seconds": 0.0})
        assert r["status"] == "ok"
        assert "trace" not in r

    def test_disabled_telemetry_object_treated_as_off(self):
        tel = LiveTelemetry(enabled=False)
        with ServerThread(workers=1, telemetry=tel) as srv:
            with ServeClient(srv.address) as client:
                r = client.submit("sleep", {"seconds": 0.0})
        assert r["status"] == "ok"
        assert tel.tracer.spans == {}

    def test_client_without_trace_sends_no_trace_field(self):
        client = ServeClient.__new__(ServeClient)    # no socket needed
        client._trace_prefix = None
        assert client._mint() is None

    def test_overhead_guard(self, tmp_path):
        """Telemetry on vs off on the same workload: the off path must
        not be slower than the on path beyond generous CI noise — i.e.
        the disabled branches are cheap.  (Structural silence above is
        the exact guarantee; this is a loose wall-clock sanity bound.)
        """
        def run(telemetry):
            kwargs = {}
            if telemetry:
                kwargs = dict(telemetry=LiveTelemetry(),
                              event_log=str(tmp_path / "e.jsonl"),
                              ledger=str(tmp_path / "l.sqlite"))
            with ServerThread(workers=1, **kwargs) as srv:
                with ServeClient(srv.address) as client:
                    t0 = time.monotonic()
                    for _ in range(10):
                        assert client.submit("sleep", {"seconds": 0.0}
                                             )["status"] == "ok"
                    return time.monotonic() - t0

        t_on = run(telemetry=True)
        t_off = run(telemetry=False)
        # Loose 3x bound: catches a pathological always-on cost without
        # flaking on a noisy single-core CI box.
        assert t_off < 3.0 * t_on + 0.05

"""The sharded fleet: ring movement bounds, fleet-vs-single byte
identity, fleet-wide single-flight, shard-death failover, store tiers.

Scales are tiny except the acceptance-scale byte-identity run (a mixed
200-request load at 4 shards), which leans on the shared store's cache
so repeated points stay memory-speed.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    FleetThread,
    HashRing,
    ResultStore,
    ServeClient,
    ServerThread,
)
from repro.serve.client import AsyncServeClient
from repro.serve.loadgen import sim_workload

pytestmark = [pytest.mark.fleet, pytest.mark.serve]


# ---------------------------------------------------------------------------
# consistent-hash ring: stability under shard add/remove
# ---------------------------------------------------------------------------
KEYS = [f"key-{i:04d}" for i in range(1000)]


class TestHashRing:
    def test_owner_total_and_deterministic(self):
        ring = HashRing([0, 1, 2])
        owners = {k: ring.owner(k) for k in KEYS}
        assert set(owners.values()) <= {0, 1, 2}
        again = HashRing([2, 1, 0])      # insertion order must not matter
        assert {k: again.owner(k) for k in KEYS} == owners

    def test_every_node_owns_a_share(self):
        ring = HashRing([0, 1, 2, 3])
        counts = {n: 0 for n in range(4)}
        for k in KEYS:
            counts[ring.owner(k)] += 1
        # 64 virtual replicas keep the split coarse-grained fair: no
        # shard below a third of, or above three times, the fair share.
        fair = len(KEYS) / 4
        assert all(fair / 3 <= c <= 3 * fair for c in counts.values()), counts

    def test_add_moves_keys_only_onto_new_node(self):
        ring = HashRing([0, 1, 2])
        before = {k: ring.owner(k) for k in KEYS}
        ring.add(3)
        moved = 0
        for k in KEYS:
            after = ring.owner(k)
            if after != before[k]:
                assert after == 3       # movement only *onto* the new node
                moved += 1
        # expected ~K/(N+1) = 250; bound it loosely both ways
        assert 0 < moved < 2 * len(KEYS) / 4

    def test_remove_moves_only_the_removed_nodes_keys(self):
        ring = HashRing([0, 1, 2, 3])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove(3)
        for k in KEYS:
            if before[k] != 3:          # survivors' keys must not move
                assert ring.owner(k) == before[k]
            else:
                assert ring.owner(k) != 3

    def test_dead_node_routes_to_successor_without_ring_mutation(self):
        ring = HashRing([0, 1, 2])
        for k in KEYS[:50]:
            owner = ring.owner(k)
            successor = ring.owner(k, dead=frozenset({owner}))
            assert successor != owner
            assert ring.owner(k) == owner          # ring itself unchanged
        # Keys NOT owned by the dead node must not move at all.
        dead = frozenset({2})
        for k in KEYS[:200]:
            if ring.owner(k) != 2:
                assert ring.owner(k, dead=dead) == ring.owner(k)

    def test_empty_or_fully_dead_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing([]).owner("k")
        with pytest.raises(LookupError):
            HashRing([0, 1]).owner("k", dead=frozenset({0, 1}))


# ---------------------------------------------------------------------------
# the two-tier store: LRU accounting, promotion, eviction
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_hot_tier_hit_and_eviction_accounting(self):
        store = ResultStore(None, hot_capacity=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1                  # a is now most-recent
        store.put("c", 3)                           # evicts b (LRU)
        assert store.get("b") is None
        assert store.get("a") == 1 and store.get("c") == 3
        stats = store.stats()
        assert stats["hot"]["evictions"] == 1
        assert stats["hot"]["hits"] == 3 and stats["hot"]["misses"] == 1
        assert stats["hot"]["size"] == 2
        assert stats["puts"] == 3
        assert stats["disk"]["enabled"] is False

    def test_disk_hit_promotes_into_hot_tier(self, tmp_path):
        store = ResultStore(str(tmp_path), hot_capacity=4)
        store.put("k", {"x": 1})
        # Evict the hot copy; the disk tier still holds it.
        for i in range(4):
            store.put(f"fill-{i}", i)
        assert store.hot_size == 4
        value = store.get("k")
        assert value == {"x": 1}
        stats = store.stats()
        assert stats["disk"]["hits"] == 1
        # Promoted: the next probe hits the hot tier, not the disk.
        assert store.get("k") == {"x": 1}
        assert store.stats()["hot"]["hits"] == stats["hot"]["hits"] + 1
        assert store.stats()["disk"]["hits"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultStore(None, hot_capacity=0)


# ---------------------------------------------------------------------------
# fleet-wide single-flight: identical concurrent submits coalesce on
# the key's owner shard, wherever they enter the fleet
# ---------------------------------------------------------------------------
async def _snapshot(fleet):
    return fleet.snapshot()


def test_fleet_wide_coalescing_of_identical_submits():
    k = 4
    with FleetThread(shards=2, workers=1) as fl:
        async def go():
            client = await AsyncServeClient.connect(fl.address)
            try:
                return await asyncio.gather(*[
                    client.submit("sleep", {"seconds": 0.1, "tag": "same"})
                    for _ in range(k)])
            finally:
                await client.close()

        results = asyncio.run(go())
        snap = fl.call(_snapshot)
    assert all(r["status"] == "ok" for r in results)
    assert len({json.dumps(r["result"], sort_keys=True)
                for r in results}) == 1
    shards = {r["shard"] for r in results}
    assert len(shards) == 1             # one owner shard for one key
    assert all(r["forwarded"] for r in results)
    # k submits, one run: the other k-1 coalesced on the owner shard.
    assert snap["coalesced"] == k - 1
    # Only one shard ever saw the key.
    assert {sid for sid, n in snap["routed"].items() if n} == shards


# ---------------------------------------------------------------------------
# shard death: failover to the ring successor, structured degradation
# ---------------------------------------------------------------------------
async def _kill(fleet, sid):
    await fleet.kill_shard(sid)


def test_shard_death_fails_over_to_ring_successor():
    with FleetThread(shards=2, workers=1) as fl:
        with ServeClient(fl.address) as client:
            first = client.submit("sleep", {"seconds": 0.01, "tag": "fo"})
            assert first["status"] == "ok"
            victim = first["shard"]
            fl.call(_kill, victim)
            # The same key must now answer from the surviving shard.
            second = client.submit("sleep", {"seconds": 0.01, "tag": "fo"})
            assert second["status"] == "ok"
            assert second["shard"] != victim
            assert second["result"] == first["result"]   # identity held
            health = client.health()
            snap = fl.call(_snapshot)
    assert health["live"] == 1
    assert victim in health["dead"]
    assert snap["failovers"] >= 1


def test_all_shards_dead_degrades_to_structured_reject():
    with FleetThread(shards=2, workers=1) as fl:
        with ServeClient(fl.address) as client:
            fl.call(_kill, 0)
            fl.call(_kill, 1)
            response = client.submit("sleep", {"seconds": 0.01, "tag": "x"})
    assert response["status"] == "rejected"
    assert "no live shards" in response["reason"]


# ---------------------------------------------------------------------------
# the acceptance-scale invariant: a mixed 200-request load through a
# 4-shard fleet is byte-identical to the same stream through one server
# ---------------------------------------------------------------------------
def _mixed_workload():
    """184 sim requests (every 4th a repeat) + 16 recovery-soak
    requests over 4 seeds = 200, interleaved deterministically."""
    workload = sim_workload(184, seed=3, nprocs=2, repeat_every=4)
    for i in range(16):
        workload.insert(i * 12, ("recovery-soak",
                                 {"seed": 100 + i % 4, "num_nodes": 2,
                                  "num_ranks": 4}))
    assert len(workload) == 200
    return workload


def _drive(address, workload):
    """Submit the stream in order; return the canonical result bytes."""
    out = []
    with ServeClient(address) as client:
        for scenario, params in workload:
            response = client.submit(scenario, params)
            assert response["status"] == "ok", response
            out.append(json.dumps(response["result"], sort_keys=True))
    return out


def test_fleet_results_byte_identical_to_single_server(tmp_path):
    workload = _mixed_workload()
    with ServerThread(workers=1, capacity=16,
                      cache_dir=str(tmp_path / "single")) as srv:
        single = _drive(srv.address, workload)
    with FleetThread(shards=4, workers=1, capacity=16,
                     cache_dir=str(tmp_path / "fleet")) as fl:
        fleet = _drive(fl.address, workload)
        snap = fl.call(_snapshot)
    assert fleet == single              # byte-for-byte, in stream order
    # The recovery-soak runs landed with digests intact on both paths.
    digests = [json.loads(r)["digest"] for r, (scenario, _) in
               zip(single, workload) if scenario == "recovery-soak"]
    assert len(digests) == 16 and all(len(d) == 64 for d in digests)
    assert len(set(digests)) == 4       # one digest per distinct seed
    # The load actually spread over the ring...
    assert len(snap["routed"]) == 4
    assert sum(snap["routed"].values()) == 200
    # ...and the shared hot tier absorbed the repeats.
    assert snap["store"]["hot"]["hits"] > 0
    assert snap["ok"] == 200

"""The unified endpoint API: ServeAddress, the legacy host/port shim,
and the wire-protocol version handshake."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.serve import (
    AsyncServeClient,
    ServeClient,
    ServerThread,
    SimServer,
    protocol,
)
from repro.serve.protocol import VERSION, ServeAddress, as_address

pytestmark = pytest.mark.serve


# ---------------------------------------------------------------------------
# ServeAddress parsing and rendering
# ---------------------------------------------------------------------------
class TestServeAddress:
    def test_parse_host_port(self):
        addr = ServeAddress.parse("10.0.0.2:7077")
        assert (addr.host, addr.port, addr.path) == ("10.0.0.2", 7077, None)
        assert not addr.is_unix
        assert str(addr) == "10.0.0.2:7077"

    def test_parse_bare_port_and_bare_host(self):
        assert ServeAddress.parse(":7077") == ServeAddress(port=7077)
        assert ServeAddress.parse("example.org") == \
            ServeAddress(host="example.org")

    def test_parse_unix(self):
        addr = ServeAddress.parse("unix:/tmp/serve.sock")
        assert addr.is_unix and addr.path == "/tmp/serve.sock"
        assert str(addr) == "unix:/tmp/serve.sock"
        with pytest.raises(ValueError):
            ServeAddress.parse("unix:")

    def test_round_trip(self):
        for text in ("127.0.0.1:9999", "unix:/x/y.sock"):
            assert str(ServeAddress.parse(text)) == text

    def test_with_port_and_validation(self):
        assert ServeAddress(port=0).with_port(81).port == 81
        with pytest.raises(ValueError):
            ServeAddress(port=-1)
        with pytest.raises(ValueError):
            ServeAddress(role="nonsense")


class TestLegacyShim:
    def test_separate_host_port_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="host/port"):
            addr = as_address("127.0.0.1", 7077, caller="test")
        assert addr == ServeAddress(host="127.0.0.1", port=7077)

    def test_string_and_address_pass_through_silently(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert as_address("host:1") == ServeAddress(host="host", port=1)
            addr = ServeAddress(port=5)
            assert as_address(addr) is addr

    def test_mixing_address_and_legacy_is_an_error(self):
        with pytest.raises(TypeError):
            as_address(ServeAddress(port=5), 7077, caller="test")

    def test_client_and_server_accept_legacy_kwargs(self):
        with pytest.warns(DeprecationWarning):
            server = SimServer(workers=1, host="127.0.0.1", port=0)
        assert server.address == ServeAddress(host="127.0.0.1", port=0)
        with ServerThread(workers=1) as srv:
            with pytest.warns(DeprecationWarning):
                client = ServeClient(host=srv.host, port=srv.port)
            with client:
                assert client.health()["status"] == "ok"


# ---------------------------------------------------------------------------
# unix-socket transport: same protocol, no TCP
# ---------------------------------------------------------------------------
def test_unix_socket_end_to_end(tmp_path):
    addr = ServeAddress(path=str(tmp_path / "serve.sock"))
    with ServerThread(workers=1, address=addr) as srv:
        assert srv.address.is_unix
        with ServeClient(srv.address) as client:
            response = client.submit("sleep", {"seconds": 0.01, "tag": "ux"})
            assert response["status"] == "ok"

    async def go():
        client = await AsyncServeClient.connect(addr)
        try:
            return await client.health()
        finally:
            await client.close()

    with ServerThread(workers=1, address=addr) as srv2:
        assert asyncio.run(go())["status"] == "ok"


# ---------------------------------------------------------------------------
# protocol versioning
# ---------------------------------------------------------------------------
class TestProtocolVersion:
    def test_clients_stamp_v_and_server_reports_it(self):
        with ServerThread(workers=1) as srv:
            with ServeClient(srv.address) as client:
                health = client.health()
        assert health["protocol_v"] == VERSION

    def test_version_mismatch_is_a_structured_one_line_error(self):
        with ServerThread(workers=1) as srv:
            with socket.create_connection((srv.host, srv.port)) as sock:
                sock.sendall(protocol.encode(
                    {"op": "health", "id": 1, "v": 99}))
                line = sock.makefile("rb").readline()
        response = protocol.decode(line)
        assert response == {
            "status": "error",
            "error": f"protocol version mismatch: server speaks "
                     f"v{VERSION}, request carried v=99",
            "v": VERSION,
            "client_v": 99,
            "id": 1,
        }

    def test_missing_v_is_accepted_as_legacy(self):
        with ServerThread(workers=1) as srv:
            with socket.create_connection((srv.host, srv.port)) as sock:
                sock.sendall(protocol.encode({"op": "health", "id": 7}))
                line = sock.makefile("rb").readline()
        response = protocol.decode(line)
        assert response["status"] == "ok" and response["id"] == 7

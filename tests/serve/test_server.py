"""The serving layer (repro.serve): admission, backpressure, deadlines,
retry, caching, and the determinism contract against serial sweeps.

Scales are deliberately tiny (single-digit workers/requests) — the CI
box may have one core, and the ``sleep``/``flaky`` scenarios exercise
the concurrency machinery without burning CPU.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import SimSpec
from repro.ompi.config import MpiConfig
from repro.serve import (
    AsyncServeClient,
    ServeClient,
    ServerThread,
    SimServer,
    protocol,
    run_simspec,
    scenario,
    scenario_names,
)
from repro.serve.loadgen import (
    backpressure_probe,
    determinism_check,
    run_loadgen,
    sim_workload,
)

pytestmark = pytest.mark.serve


# ---------------------------------------------------------------------------
# protocol + registry
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_round_trip(self):
        msg = {"op": "submit", "scenario": "sim", "params": {"seed": 1}}
        assert protocol.decode(protocol.encode(msg)) == msg

    def test_encode_is_canonical_one_line(self):
        data = protocol.encode({"b": 1, "a": 2})
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert data.index(b'"a"') < data.index(b'"b"')

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{not json}\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'"a bare string"\n')


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("sim", "recovery-soak", "figure", "sleep", "flaky"):
            assert name in scenario_names()
            assert callable(scenario(name))

    def test_unknown_scenario_suggests(self):
        with pytest.raises(KeyError, match="sim"):
            scenario("simm")

    def test_run_simspec_is_deterministic(self):
        spec = SimSpec(nprocs=4)
        a = run_simspec(spec, program="allreduce", seed=3)
        b = run_simspec(spec.to_payload(), program="allreduce", seed=3)
        assert a == b
        assert len(a["digest"]) == 64
        # A different seed is a different result.
        assert run_simspec(spec, seed=4)["digest"] != a["digest"]

    def test_run_simspec_sessions_program(self):
        # comm_create_from_group needs the exCID generator (sessions config).
        spec = SimSpec(nprocs=2, config=MpiConfig.sessions_prototype())
        out = run_simspec(spec, program="sessions", seed=1)
        assert out["results"] == [3, 3]     # (0+1) + (1+1) on both ranks

    def test_run_simspec_unknown_program(self):
        with pytest.raises(KeyError, match="unknown program"):
            run_simspec(SimSpec(nprocs=2), program="nope")


# ---------------------------------------------------------------------------
# tier-1 smoke: in-process server, 8 requests, well under 10 s
# ---------------------------------------------------------------------------
def test_serve_smoke(tmp_path):
    t0 = time.monotonic()
    workload = sim_workload(8, seed=0, nprocs=2)
    with ServerThread(workers=2, capacity=8,
                      cache_dir=str(tmp_path)) as srv:
        report = run_loadgen(srv.address, workload, clients=2)
        with ServeClient(srv.address) as client:
            health = client.health()
            stats = client.stats()["stats"]
    assert report["by_status"] == {"ok": 8}
    assert report["client_errors"] == []
    assert report["throughput_rps"] > 0
    assert health["status"] == "ok" and health["workers"] == 2
    assert stats["ok"] >= 8 and stats["errors"] == 0
    # sim_workload repeats every 4th request -> the cache must have hit.
    assert stats["cache"]["hits"] >= 1
    assert 0 < stats["cache"]["hit_rate"] < 1
    assert time.monotonic() - t0 < 10.0


# ---------------------------------------------------------------------------
# admission order, backpressure, deadlines
# ---------------------------------------------------------------------------
def test_fifo_admission_single_worker():
    """One worker, multiplexed submits: completions follow admission order."""
    async def drive():
        server = await SimServer(workers=1, capacity=8).start()
        try:
            client = await AsyncServeClient.connect(server.address)
            try:
                subs = [asyncio.ensure_future(
                            client.submit("sleep", {"seconds": 0.01, "tag": i}))
                        for i in range(5)]
                order = []
                for fut in asyncio.as_completed(subs):
                    response = await fut
                    assert response["status"] == "ok"
                    order.append(response["result"]["tag"])
                return order
            finally:
                await client.close()
        finally:
            await server.stop()

    assert asyncio.run(drive()) == [0, 1, 2, 3, 4]


def test_backpressure_rejects_at_full_queue():
    probe = backpressure_probe(capacity=2, oversubscription=4, hold_s=0.2)
    assert probe["burst"] == 8
    assert probe["rejections_observed"], probe
    assert probe["bounded"], probe
    assert probe["max_queue_depth"] <= 2
    # Everything admitted eventually completed; nothing was lost.
    assert probe["ok"] + probe["rejected"] == probe["burst"]


def test_deadline_expires_queued_request():
    async def drive():
        server = await SimServer(workers=1, capacity=8).start()
        try:
            client = await AsyncServeClient.connect(server.address)
            try:
                blocker = asyncio.ensure_future(
                    client.submit("sleep", {"seconds": 0.3}))
                await asyncio.sleep(0.05)       # blocker reaches the worker
                doomed = await client.submit("sleep", {"seconds": 0.01},
                                             deadline_s=0.05)
                ok_after = await client.submit("sleep", {"seconds": 0.01})
                return await blocker, doomed, ok_after, server.stats.expired
            finally:
                await client.close()
        finally:
            await server.stop()

    blocker, doomed, ok_after, expired = asyncio.run(drive())
    assert blocker["status"] == "ok"
    assert doomed["status"] == "expired"
    assert "queued" in doomed["reason"]
    assert ok_after["status"] == "ok"       # server healthy after expiry
    assert expired == 1


def test_deadline_expires_mid_run():
    with ServerThread(workers=1, capacity=4) as srv:
        with ServeClient(srv.address) as client:
            doomed = client.submit("sleep", {"seconds": 5.0}, deadline_s=0.1)
            ok_after = client.submit("sleep", {"seconds": 0.01})
            stats = client.stats()["stats"]
    assert doomed["status"] == "expired"
    assert "mid-run" in doomed["reason"]
    assert ok_after["status"] == "ok"       # a fresh worker took over
    assert stats["worker_spawns"] >= 2


def test_server_thread_boot_failure_raises_immediately():
    """A broken server config must surface its real exception from
    __enter__, not hang out the 30s startup timeout."""
    t0 = time.monotonic()
    with pytest.raises(TypeError, match="no_such_option"):
        ServerThread(workers=1, no_such_option=True).__enter__()
    assert time.monotonic() - t0 < 15.0


# ---------------------------------------------------------------------------
# worker death + retry
# ---------------------------------------------------------------------------
def test_worker_death_is_retried(tmp_path):
    with ServerThread(workers=1, capacity=4, retry_limit=2) as srv:
        with ServeClient(srv.address) as client:
            response = client.submit("flaky", {
                "state_dir": str(tmp_path), "key": "once",
                "crashes": 1, "value": 99})
            stats = client.stats()["stats"]
    assert response["status"] == "ok"
    assert response["result"] == {"attempts": 2, "value": 99}
    assert response["attempts"] == 2        # one death, one successful retry
    assert stats["worker_deaths"] == 1
    assert stats["retries"] == 1


def test_retry_budget_exhausts(tmp_path):
    with ServerThread(workers=1, capacity=4, retry_limit=1) as srv:
        with ServeClient(srv.address) as client:
            response = client.submit("flaky", {
                "state_dir": str(tmp_path), "key": "always", "crashes": 99})
            ok_after = client.submit("sleep", {"seconds": 0.01})
    assert response["status"] == "error"
    assert "retry budget" in response["error"]
    assert ok_after["status"] == "ok"       # pool recovered regardless


# ---------------------------------------------------------------------------
# caching + determinism
# ---------------------------------------------------------------------------
def test_cache_serves_repeats_without_recompute(tmp_path):
    params = {"spec": SimSpec(nprocs=2).to_payload(), "seed": 5}
    with ServerThread(workers=1, capacity=4,
                      cache_dir=str(tmp_path)) as srv:
        with ServeClient(srv.address) as client:
            first = client.submit("sim", params)
            second = client.submit("sim", params)
            stats = client.stats()["stats"]
    assert first["status"] == second["status"] == "ok"
    assert first["cached"] is False and second["cached"] is True
    assert first["result"] == second["result"]
    assert stats["cache"] == {"hits": 1, "misses": 1, "hit_rate": 0.5}


def test_concurrent_serve_matches_serial_sweep():
    """The acceptance contract: same seeds through the concurrent server
    and through a serial ``repro.sweep`` run -> byte-identical results."""
    det = determinism_check([0, 1], workers=2, clients=2,
                            num_nodes=2, num_ranks=4)
    assert det["serve_matches_serial_sweep"], det
    assert det["mismatched_seeds"] == [] and det["errors"] == []
    assert len(det["digests"]) == 2


# ---------------------------------------------------------------------------
# ops: resize, drain, errors on the wire
# ---------------------------------------------------------------------------
def test_resize_and_health():
    with ServerThread(workers=1, capacity=4) as srv:
        with ServeClient(srv.address) as client:
            assert client.resize(3) == {"status": "ok", "workers": 3,
                                        "id": 1}
            health = client.health()
            assert health["workers"] == 3
            assert client.submit("sleep", {"seconds": 0.01})["status"] == "ok"


def test_drain_then_reject():
    with ServerThread(workers=1, capacity=4) as srv:
        with ServeClient(srv.address) as client:
            assert client.submit("sleep", {"seconds": 0.01})["status"] == "ok"
            assert client.drain()["drained"] is True
            after = client.submit("sleep", {"seconds": 0.01})
    assert after["status"] == "rejected"
    assert after["reason"] == "draining"


def test_wire_errors():
    with ServerThread(workers=1, capacity=4) as srv:
        with ServeClient(srv.address) as client:
            unknown = client.submit("no-such-scenario")
            assert unknown["status"] == "error"
            assert "unknown scenario" in unknown["error"]
            bad_op = client._rpc({"op": "frobnicate"})
            assert bad_op["status"] == "error"
            assert "unknown op" in bad_op["error"]

"""OMPI-layer fault matrix: CID consensus, collectives, PML message faults.

The contract mirrors ULFM's "no silent hang" rule: an operation on a
communicator with a failed member either completes (eager sends finish
locally; sub-trees that never touch the victim may succeed) or raises a
typed ``MPIErrProcFailed`` — and either way the simulation quiesces in
bounded time.
"""

import pytest

from repro.api import SimSpec, make_world
from repro.faults import FaultPlan
from repro.machine.presets import laptop
from repro.ompi.constants import SUM
from repro.ompi.errors import ERRORS_RETURN, MPIError
from repro.simtime.engine import DeadlockError
from repro.simtime.process import Sleep
from tests.faults.conftest import SIM_BOUND

pytestmark = pytest.mark.faults


def _spawn(world, gens):
    procs = []
    for rank, gen in enumerate(gens):
        sim = world.cluster.spawn(gen, name=f"rank{rank}")
        world.cluster.faults.register_rank_proc(world.job.proc(rank), sim)
        procs.append(sim)
    for p in procs:
        p.defuse()
    return procs


def _run_bounded(world):
    world.run()
    assert world.cluster.now < SIM_BOUND, (
        f"fault scenario overran the termination bound: t={world.cluster.now}"
    )
    return world.cluster.now


# ---------------------------------------------------------------------------
# Legacy CID consensus x kill_proc (paper §III-B2: the consensus allreduce
# cannot agree once a participant is gone — it must abort, not spin)
# ---------------------------------------------------------------------------
class TestCidConsensusKill:
    def test_kill_during_cid_consensus(self):
        world = make_world(spec=SimSpec(nprocs=6, machine=laptop(num_nodes=2), ppn=3))
        cluster, job = world.cluster, world.job
        outcomes = {}
        entered = []

        def survivor(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            entered.append(mpi.rank_in_job)
            try:
                dup = yield from comm.dup()
                outcomes[mpi.rank_in_job] = ("ok", dup.local_cid)
            except MPIError as err:
                outcomes[mpi.rank_in_job] = ("typed", type(err).__name__)

        def victim(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            yield Sleep(1e9)  # never joins the dup; killed below

        gens = [survivor(world.runtimes[r]) for r in range(5)]
        gens.append(victim(world.runtimes[5]))
        procs = _spawn(world, gens)

        def watcher():
            while len(entered) < 5:
                yield Sleep(50e-6)
            yield Sleep(100e-6)  # survivors are now blocked in the consensus
            cluster.faults.kill_rank(job, 5)

        cluster.spawn(watcher(), name="watcher")
        _run_bounded(world)
        assert [outcomes[r][0] for r in range(5)] == ["typed"] * 5
        assert procs[5].exception is not None


COLLS = {
    "barrier": lambda comm: comm.barrier(),
    "bcast": lambda comm: comm.bcast("payload", root=0),
    "allreduce": lambda comm: comm.allreduce(1, op=SUM),
    "gather": lambda comm: comm.gather(comm.rank, root=0),
    "alltoall": lambda comm: comm.alltoall(list(range(comm.size))),
}


# ---------------------------------------------------------------------------
# Collectives x kill_proc x {before, during}
# ---------------------------------------------------------------------------
class TestCollectivesKillProc:
    def _world(self):
        return make_world(spec=SimSpec(nprocs=4, machine=laptop(num_nodes=2), ppn=2))

    @pytest.mark.parametrize("coll", sorted(COLLS))
    def test_kill_before_collective(self, coll):
        """Damage is known before entry: every survivor gets the typed
        error from the ``_pre_coll`` damage check."""
        world = self._world()
        outcomes = {}
        inited = []

        def survivor(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            inited.append(mpi.rank_in_job)
            while not comm.failed_peers:   # wait for the failure notice
                yield Sleep(50e-6)
            try:
                yield from COLLS[coll](comm)
                outcomes[mpi.rank_in_job] = "ok"
            except MPIError:
                outcomes[mpi.rank_in_job] = "typed"

        def victim(mpi):
            yield from mpi.mpi_init()
            inited.append(mpi.rank_in_job)
            yield Sleep(1e9)

        gens = [survivor(world.runtimes[r]) for r in range(3)]
        gens.append(victim(world.runtimes[3]))
        _spawn(world, gens)

        def watcher():
            while len(inited) < 4:
                yield Sleep(50e-6)
            world.cluster.faults.kill_rank(world.job, 3)

        world.cluster.spawn(watcher(), name="watcher")
        _run_bounded(world)
        assert outcomes == {r: "typed" for r in range(3)}

    @pytest.mark.parametrize("coll", sorted(COLLS))
    def test_kill_during_collective(self, coll):
        """The victim dies while survivors are inside the collective.
        Eager sends complete locally, so ranks whose part of the
        algorithm never waits on the victim may legitimately succeed
        (e.g. bcast leaves) — but nobody may hang."""
        world = self._world()
        outcomes = {}
        entered = []

        def survivor(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            entered.append(mpi.rank_in_job)
            try:
                yield from COLLS[coll](comm)
                outcomes[mpi.rank_in_job] = "ok"
            except MPIError:
                outcomes[mpi.rank_in_job] = "typed"

        def victim(mpi):
            yield from mpi.mpi_init()
            yield Sleep(1e9)

        gens = [survivor(world.runtimes[r]) for r in range(3)]
        gens.append(victim(world.runtimes[3]))
        _spawn(world, gens)

        def watcher():
            while len(entered) < 3:
                yield Sleep(50e-6)
            yield Sleep(100e-6)
            world.cluster.faults.kill_rank(world.job, 3)

        world.cluster.spawn(watcher(), name="watcher")
        _run_bounded(world)
        assert len(outcomes) == 3
        assert set(outcomes.values()) <= {"ok", "typed"}


# ---------------------------------------------------------------------------
# PML message faults: delay/dup are absorbed, drop is a *loud* deadlock
# ---------------------------------------------------------------------------
class TestPmlMessageFaults:
    TAG = 42

    def _pair(self, plan):
        world = make_world(spec=SimSpec(nprocs=2, machine=laptop(num_nodes=2), ppn=1))
        world.cluster.install_faults(plan)
        return world

    def test_delay_preserves_payload_and_order(self):
        world = self._pair(
            FaultPlan().delay_msg(2e-4, layer="pml", tag=self.TAG, max_hits=1)
        )
        got = []

        def sender(mpi):
            comm = yield from mpi.mpi_init()
            for i in range(3):
                yield from comm.send({"i": i}, 1, tag=self.TAG)

        def receiver(mpi):
            comm = yield from mpi.mpi_init()
            for _ in range(3):
                got.append((yield from comm.recv(source=0, tag=self.TAG)))

        _spawn(world, [sender(world.runtimes[0]), receiver(world.runtimes[1])])
        _run_bounded(world)
        # The per-pair delivery floor keeps FIFO despite the delay.
        assert got == [{"i": 0}, {"i": 1}, {"i": 2}]
        assert world.cluster.faults.stats["delay_msg"] == 1

    def test_dup_is_deduplicated_by_sequence(self):
        world = self._pair(
            FaultPlan().dup_msg(2, layer="pml", tag=self.TAG, max_hits=1)
        )
        got = []

        def sender(mpi):
            comm = yield from mpi.mpi_init()
            yield from comm.send("once", 1, tag=self.TAG)

        def receiver(mpi):
            comm = yield from mpi.mpi_init()
            got.append((yield from comm.recv(source=0, tag=self.TAG)))

        _spawn(world, [sender(world.runtimes[0]), receiver(world.runtimes[1])])
        _run_bounded(world)
        assert got == ["once"]
        assert world.cluster.faults.stats["dup_msg"] == 1
        assert world.runtimes[1].endpoint.stats["dup_dropped"] >= 1

    def test_drop_without_retransmit_is_a_loud_deadlock(self):
        """ob1-over-sim has no retransmit: a dropped user packet leaves
        the receiver blocked forever, and the engine reports that as a
        DeadlockError instead of spinning — failures are never silent."""
        world = self._pair(
            FaultPlan().drop_msg(layer="pml", tag=self.TAG, max_hits=1)
        )

        def sender(mpi):
            comm = yield from mpi.mpi_init()
            yield from comm.send("lost", 1, tag=self.TAG)

        def receiver(mpi):
            comm = yield from mpi.mpi_init()
            yield from comm.recv(source=0, tag=self.TAG)

        _spawn(world, [sender(world.runtimes[0]), receiver(world.runtimes[1])])
        with pytest.raises(DeadlockError):
            world.run()
        assert world.cluster.faults.stats["drop_msg"] == 1

"""The PR's acceptance scenario (see ISSUE: fault-injection demo).

One rank is killed *mid-init-fence* across a 4-node cluster.  The
survivors must (a) see their fence return a typed PMIX_ERR_PROC_ABORTED
error rather than hang, and (b) receive a PMIX_ERR_PROC_ABORTED event
notification naming the dead rank.  On pre-fault-injection code this
scenario cannot even be expressed (``repro.faults`` does not exist),
and the underlying behaviour — a fence whose participant dies — was an
unbounded hang.
"""

import pytest

from repro.faults import FaultPlan
from repro.pmix.types import PMIX_ERR_PROC_ABORTED, PmixError
from repro.simtime.process import ProcessKilled, Sleep
from tests.faults.conftest import boot, run_bounded, spawn_ranks

pytestmark = pytest.mark.faults

RANKS = 8
VICTIM = 7


def test_kill_one_rank_mid_init_fence_across_four_nodes():
    cluster, job = boot(nodes=4, ranks=RANKS)
    # Trigger on the first inter-daemon fence contribution: the kill
    # lands while the collective is genuinely in flight, independent of
    # the exact startup interleaving.
    cluster.install_faults(
        FaultPlan().kill_proc(VICTIM, after_count=1, layer="rml", tag="grpcomm_up")
    )
    fence_errors = {}
    notified = {}

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        notified[rank] = []
        client.register_event_handler(
            [PMIX_ERR_PROC_ABORTED],
            lambda code, src, info: notified[rank].append(src.rank),
        )
        client.put("ep", f"ep-{rank}")
        yield from client.commit()
        if rank == VICTIM:
            # Dawdle so the survivors are already waiting in the fence
            # when the kill fires; the victim never contributes.
            yield Sleep(5e-4)
        try:
            yield from client.fence()
            fence_errors[rank] = None
        except PmixError as err:
            yield Sleep(1e-3)  # let the event notification drain
            fence_errors[rank] = err.status

    procs = spawn_ranks(cluster, job, [rank_proc(r) for r in range(RANKS)])
    run_bounded(cluster)  # "no hang": bounded simulated time

    survivors = [r for r in range(RANKS) if r != VICTIM]
    # (a) every survivor's fence returned the typed error...
    assert {fence_errors[r] for r in survivors} == {PMIX_ERR_PROC_ABORTED}
    # (b) ...and every survivor was notified of exactly the dead rank.
    for r in survivors:
        assert sorted(set(notified[r])) == [VICTIM], f"rank {r}: {notified[r]}"
    # The victim itself was killed, not left running.
    assert isinstance(procs[VICTIM].exception, ProcessKilled)
    assert cluster.faults.is_dead_proc(job.proc(VICTIM))

"""The fault matrix: (layer x fault kind x timing).

Every case must terminate in bounded simulated time with either success
or a *typed* error — never a hang.  PMIx-layer collectives (fence,
group construct) fail with ``PmixError`` carrying PROC_ABORTED or
TIMEOUT; OMPI operations fail with ``MPIErrProcFailed`` (possibly
wrapped in ``MPIAbort`` by ERRORS_ARE_FATAL).
"""

import pytest

from repro.faults import FaultPlan
from repro.pmix.types import (
    PMIX_ERR_PROC_ABORTED,
    PMIX_ERR_TIMEOUT,
    PmixError,
)
from repro.simtime.process import Sleep
from tests.faults.conftest import boot, run_bounded, spawn_ranks

pytestmark = pytest.mark.faults


def _sleeper(client_gen_done=None):
    """A rank that inits its client and then hangs until killed."""

    def gen(client):
        yield from client.init()
        if client_gen_done is not None:
            client_gen_done.append(True)
        yield Sleep(1e9)

    return gen


# ---------------------------------------------------------------------------
# PMIx fence x kill_proc x {before, during, after}
# ---------------------------------------------------------------------------
class TestFenceKillProc:
    def _fence_rank(self, job, rank, outcomes, pre_sleep=0.0):
        client = job.client(rank)
        yield from client.init()
        yield from client.commit()
        if pre_sleep:
            yield Sleep(pre_sleep)
        try:
            yield from client.fence()
            outcomes[rank] = "ok"
        except PmixError as err:
            outcomes[rank] = err.status

    def test_kill_before_fence(self):
        cluster, job = boot()
        cluster.install_faults(FaultPlan().kill_proc(7, at_time=1e-4))
        outcomes = {}
        gens = [self._fence_rank(job, r, outcomes, pre_sleep=4e-4) for r in range(7)]
        gens.append(_sleeper()(job.client(7)))
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        # The victim was dead before anyone fenced: the server seeds its
        # abort marker at arrival time and everyone errors out.
        assert outcomes == {r: PMIX_ERR_PROC_ABORTED for r in range(7)}

    def test_kill_during_fence(self):
        cluster, job = boot()
        # Fires when the first fence contribution crosses the RML: the
        # survivors are mid-collective, the (dawdling) victim never joins.
        cluster.install_faults(
            FaultPlan().kill_proc(7, after_count=1, layer="rml", tag="grpcomm_up")
        )
        outcomes = {}
        gens = [self._fence_rank(job, r, outcomes) for r in range(7)]
        gens.append(self._fence_rank(job, 7, outcomes, pre_sleep=5e-4))
        procs = spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        assert outcomes == {r: PMIX_ERR_PROC_ABORTED for r in range(7)}
        assert procs[7].exception is not None  # killed mid-sleep

    def test_kill_after_fence(self):
        cluster, job = boot()
        cluster.install_faults(FaultPlan().kill_proc(7, at_time=2e-3))
        outcomes = {}
        gens = [self._fence_rank(job, r, outcomes) for r in range(8)]
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        # Everyone (victim included) completed before the kill landed.
        assert outcomes == {r: "ok" for r in range(8)}
        assert cluster.faults.stats["kill_proc"] == 1


# ---------------------------------------------------------------------------
# PMIx group construct x kill_proc x {before, during, after}
# ---------------------------------------------------------------------------
class TestGroupConstructKillProc:
    def _group_rank(self, job, rank, outcomes, pre_sleep=0.0):
        client = job.client(rank)
        yield from client.init()
        if pre_sleep:
            yield Sleep(pre_sleep)
        procs = [job.proc(r) for r in range(job.num_ranks)]
        try:
            pgcid = yield from client.group_construct("matrix", procs)
            outcomes[rank] = ("ok", pgcid)
        except PmixError as err:
            outcomes[rank] = ("err", err.status)

    def test_kill_before_construct(self):
        cluster, job = boot()
        cluster.install_faults(FaultPlan().kill_proc(7, at_time=1e-4))
        outcomes = {}
        gens = [self._group_rank(job, r, outcomes, pre_sleep=4e-4) for r in range(7)]
        gens.append(_sleeper()(job.client(7)))
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        assert outcomes == {r: ("err", PMIX_ERR_PROC_ABORTED) for r in range(7)}

    def test_kill_during_construct(self):
        cluster, job = boot()
        cluster.install_faults(
            FaultPlan().kill_proc(7, after_count=1, layer="rml", tag="grpcomm_up")
        )
        outcomes = {}
        gens = [self._group_rank(job, r, outcomes) for r in range(7)]
        gens.append(self._group_rank(job, 7, outcomes, pre_sleep=5e-4))
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        assert outcomes == {r: ("err", PMIX_ERR_PROC_ABORTED) for r in range(7)}

    def test_kill_after_construct(self):
        cluster, job = boot()
        cluster.install_faults(FaultPlan().kill_proc(7, at_time=2e-3))
        outcomes = {}
        gens = [self._group_rank(job, r, outcomes) for r in range(8)]
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        assert all(o[0] == "ok" for o in outcomes.values())
        assert len({o[1] for o in outcomes.values()}) == 1  # one agreed PGCID


# ---------------------------------------------------------------------------
# kill_node during fence / group construct
# ---------------------------------------------------------------------------
class TestNodeDown:
    def test_node_down_during_fence(self):
        cluster, job = boot()
        cluster.install_faults(
            FaultPlan().kill_node(3, after_count=1, layer="rml", tag="grpcomm_up")
        )
        outcomes = {}

        def rank_gen(rank, pre_sleep=0.0):
            client = job.client(rank)
            yield from client.init()
            yield from client.commit()
            if pre_sleep:
                yield Sleep(pre_sleep)
            try:
                yield from client.fence()
                outcomes[rank] = "ok"
            except PmixError as err:
                outcomes[rank] = err.status

        # Ranks 6,7 live on node 3: delay them so the node dies before
        # their contributions are in.
        gens = [rank_gen(r) for r in range(6)]
        gens += [rank_gen(r, pre_sleep=5e-4) for r in (6, 7)]
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        assert outcomes == {r: PMIX_ERR_PROC_ABORTED for r in range(6)}
        assert cluster.faults.is_dead_node(3)
        # Survivor daemons all learned of the death via the xcast.
        for node in (0, 1, 2):
            assert cluster.dvm.daemon_for(node).is_node_down(3)

    def test_node_down_evicts_psets(self):
        cluster, job = boot()
        cluster.psets.define("app/all", [job.proc(r) for r in range(8)])
        cluster.install_faults(
            FaultPlan().kill_node(3, after_count=1, layer="rml", tag="grpcomm_up")
        )
        outcomes = {}

        def rank_gen(rank, pre_sleep=0.0):
            client = job.client(rank)
            yield from client.init()
            if pre_sleep:
                yield Sleep(5e-4)
            procs = [job.proc(r) for r in range(8)]
            try:
                yield from client.group_construct("nd", procs)
                outcomes[rank] = "ok"
            except PmixError as err:
                outcomes[rank] = err.status

        gens = [rank_gen(r) for r in range(6)]
        gens += [rank_gen(r, pre_sleep=5e-4) for r in (6, 7)]
        spawn_ranks(cluster, job, gens)
        run_bounded(cluster)
        assert all(outcomes[r] == PMIX_ERR_PROC_ABORTED for r in range(6))
        members = cluster.psets.members("app/all")
        assert job.proc(6) not in members and job.proc(7) not in members
        assert job.proc(0) in members

    def test_hnp_node_is_protected(self):
        cluster, _job = boot()
        with pytest.raises(ValueError):
            cluster.faults.kill_node(0)


# ---------------------------------------------------------------------------
# RML message faults x fence: drop -> timeout; delay/dup -> success
# ---------------------------------------------------------------------------
class TestRmlMessageFaults:
    def _fence_all(self, cluster, job, outcomes):
        def rank_gen(rank):
            client = job.client(rank)
            yield from client.init()
            yield from client.commit()
            try:
                yield from client.fence()
                outcomes[rank] = "ok"
            except PmixError as err:
                outcomes[rank] = err.status

        spawn_ranks(cluster, job, [rank_gen(r) for r in range(job.num_ranks)])
        return run_bounded(cluster)

    def test_drop_grpcomm_up_times_out(self):
        cluster, job = boot()
        cluster.install_faults(
            FaultPlan().drop_msg(layer="rml", tag="grpcomm_up", max_hits=1)
        )
        outcomes = {}
        t = self._fence_all(cluster, job, outcomes)
        # The severed collective cannot complete; the timeout net fires.
        assert set(outcomes.values()) == {PMIX_ERR_TIMEOUT}
        assert t >= cluster.machine.fault_collective_timeout

    def test_delay_grpcomm_up_still_completes(self):
        cluster, job = boot()
        cluster.install_faults(
            FaultPlan().delay_msg(3e-4, layer="rml", tag="grpcomm_up", max_hits=2)
        )
        outcomes = {}
        self._fence_all(cluster, job, outcomes)
        assert set(outcomes.values()) == {"ok"}
        assert cluster.faults.stats["delay_msg"] == 2

    def test_dup_grpcomm_up_still_completes(self):
        cluster, job = boot()
        cluster.install_faults(
            FaultPlan().dup_msg(2, layer="rml", tag="grpcomm_up", max_hits=2)
        )
        outcomes = {}
        self._fence_all(cluster, job, outcomes)
        assert set(outcomes.values()) == {"ok"}
        assert cluster.faults.stats["dup_msg"] == 2

"""Helpers shared by the fault-injection test suite (docs/faults.md)."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.machine.presets import laptop

# Every fault case must be quiescent well inside this many simulated
# seconds — "bounded termination".  The per-collective timeout is 0.5 s,
# so 2 s leaves room for a timeout plus follow-up traffic.
SIM_BOUND = 2.0


def boot(nodes: int = 4, ranks: int = 8, ppn: int | None = None, tracer=None):
    cluster = Cluster(machine=laptop(num_nodes=nodes), tracer=tracer)
    job = cluster.launch(ranks, ppn=ppn or max(1, ranks // nodes))
    return cluster, job


def spawn_ranks(cluster, job, gens):
    """Spawn rank generators and register them with the FaultManager so
    ``kill_proc`` actions can terminate the right SimProcess."""
    procs = []
    for rank, gen in enumerate(gens):
        sim = cluster.spawn(gen, name=f"rank{rank}")
        cluster.faults.register_rank_proc(job.proc(rank), sim)
        procs.append(sim)
    for p in procs:
        p.defuse()
    return procs


def run_bounded(cluster):
    """Run to quiescence and enforce the bounded-termination contract."""
    cluster.run()
    assert cluster.now < SIM_BOUND, (
        f"fault scenario overran the termination bound: t={cluster.now}"
    )
    return cluster.now

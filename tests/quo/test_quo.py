"""QUO runtime library tests: topology, binding, quiescence mechanisms."""

import pytest

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.quo.context import QUO_OBJ_CORE, QUO_OBJ_SOCKET, QuoContext, QuoError


def run(nprocs, main, sessions=False, nodes=2, ppn=None):
    config = MpiConfig.sessions_prototype() if sessions else MpiConfig.baseline()
    return run_mpi(SimSpec(nprocs=nprocs, machine=laptop(num_nodes=nodes),
                           ppn=ppn or nprocs // nodes, config=config), main)


class TestTopology:
    def test_qids_and_node_counts(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            out = (quo.qid(), quo.nqids())
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return out

        results = run(4, main, nodes=2, ppn=2)
        assert results == [(0, 2), (1, 2), (0, 2), (1, 2)]

    def test_nobjs(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            cores = quo.nobjs(QUO_OBJ_CORE)
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return cores

        assert set(run(2, main, nodes=1, ppn=2)) == {laptop().cores_per_node}

    def test_auto_distrib_picks_leaders(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            leader = quo.auto_distrib(1)
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return leader

        results = run(4, main, nodes=2, ppn=2)
        assert results == [True, False, True, False]


class TestBinding:
    def test_push_pop(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            quo.bind_push(QUO_OBJ_SOCKET)
            bound = quo.bound
            popped = quo.bind_pop()
            empty = quo.bound is None
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return (bound, popped, empty)

        assert set(run(2, main, nodes=1, ppn=2)) == {(QUO_OBJ_SOCKET, QUO_OBJ_SOCKET, True)}

    def test_pop_empty_raises(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            try:
                quo.bind_pop()
            except QuoError:
                result = "rejected"
            else:
                result = "accepted"
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return result

        assert set(run(2, main, nodes=1, ppn=2)) == {"rejected"}


class TestQuiescence:
    @pytest.mark.parametrize("sessions", [False, True])
    def test_barrier_holds_until_all_arrive(self, sessions):
        from repro.simtime.process import Sleep

        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi, use_sessions=sessions)
            yield Sleep(mpi.rank_in_job * 100e-6)
            arrived = mpi.engine.now
            yield from quo.quiesce()
            released = mpi.engine.now
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return (arrived, released)

        results = run(4, main, sessions=sessions, nodes=1, ppn=4)
        last = max(a for a, _ in results)
        assert all(rel >= last for _, rel in results)

    def test_sessions_barrier_requires_sessions(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi, use_sessions=False)
            try:
                yield from quo.sessions_barrier()
            except QuoError:
                result = "rejected"
            else:
                result = "accepted"
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return result

        assert set(run(2, main, nodes=1, ppn=2)) == {"rejected"}

    def test_sessions_barrier_release_lag_bounded(self):
        """The nanosleep poll adds at most a few quanta of release lag
        after the LAST rank arrives."""
        from repro.simtime.process import Sleep

        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi, use_sessions=True)
            if mpi.rank_in_job != 0:
                yield Sleep(500e-6)  # rank 0 parks early and polls
            arrived = mpi.engine.now
            yield from quo.quiesce()
            released = mpi.engine.now
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return (arrived, released)

        results = run(2, main, sessions=True, nodes=1, ppn=2)
        quantum = laptop().nanosleep_quantum
        last_arrival = max(a for a, _ in results)
        for _arrived, released in results:
            assert released - last_arrival < 5 * quantum + 50e-6

    def test_quiesce_is_node_local(self):
        """Quiescence on one node never waits for the other node."""
        from repro.simtime.process import Sleep

        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            if mpi.node == 1:
                yield Sleep(10e-3)  # node 1 arrives much later
            yield from quo.quiesce()
            released = mpi.engine.now
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return released

        results = run(4, main, nodes=2, ppn=2)
        # Node 0's pair released long before node 1's.
        assert max(results[:2]) < min(results[2:])

    def test_context_use_after_free(self):
        def main(mpi):
            yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi)
            yield from quo.free()
            try:
                quo.qid()
            except QuoError:
                result = "rejected"
            else:
                result = "accepted"
            yield from mpi.mpi_finalize()
            return result

        assert set(run(2, main, nodes=1, ppn=2)) == {"rejected"}

    def test_sessions_integration_isolated_from_app(self):
        """QUO's private session leaves the app's WPM state untouched
        (the paper's 2MESH integration pattern)."""

        def main(mpi):
            from repro.ompi.constants import SUM

            world = yield from mpi.mpi_init()
            quo = yield from QuoContext.create(mpi, use_sessions=True)
            assert quo.session is not None and not quo.session.internal
            total = yield from world.allreduce(1, op=SUM)  # app traffic
            yield from quo.quiesce()
            yield from quo.free()
            yield from mpi.mpi_finalize()
            return total

        assert set(run(4, main, sessions=True, nodes=1, ppn=4)) == {4}

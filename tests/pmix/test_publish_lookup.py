"""PMIx publish/lookup (the dynamic-process rendezvous board)."""

import pytest

from repro.cluster import Cluster
from repro.machine.presets import laptop
from repro.pmix.types import PMIX_ERR_TIMEOUT, PmixError
from repro.simtime.process import Sleep
from tests.conftest import run_procs


def make_job(nodes=2, ranks=4, ppn=2):
    cluster = Cluster(machine=laptop(num_nodes=nodes))
    job = cluster.launch(ranks, ppn=ppn)
    return cluster, job


def test_publish_then_lookup():
    cluster, job = make_job()

    def publisher():
        client = job.client(0)
        yield from client.init()
        yield from client.publish("svc.port", "nic0:4242")

    def reader():
        client = job.client(3)  # different node
        yield from client.init()
        yield Sleep(1e-3)
        return (yield from client.lookup("svc.port"))

    results = run_procs(cluster, publisher(), reader())
    assert results[1] == (True, "nic0:4242")


def test_lookup_missing_returns_not_found():
    cluster, job = make_job()

    def reader():
        client = job.client(0)
        yield from client.init()
        return (yield from client.lookup("nope"))

    assert run_procs(cluster, reader())[0] == (False, None)


def test_waiting_lookup_blocks_until_publish():
    cluster, job = make_job()
    t_published = []

    def late_publisher():
        client = job.client(0)
        yield from client.init()
        yield Sleep(2e-3)
        t_published.append(cluster.now)
        yield from client.publish("late.key", 42)

    def waiter():
        client = job.client(2)
        yield from client.init()
        found, value = yield from client.lookup("late.key", wait=True)
        return (found, value, cluster.now)

    results = run_procs(cluster, late_publisher(), waiter())
    found, value, t_got = results[1]
    assert (found, value) == (True, 42)
    assert t_got >= t_published[0]


def test_waiting_lookup_times_out():
    cluster, job = make_job()

    def waiter():
        client = job.client(0)
        yield from client.init()
        with pytest.raises(PmixError) as err:
            yield from client.lookup("never", wait=True, timeout=1e-3)
        assert err.value.status == PMIX_ERR_TIMEOUT
        return "timed-out"

    assert run_procs(cluster, waiter()) == ["timed-out"]


def test_unpublish():
    cluster, job = make_job()

    def flow():
        client = job.client(0)
        yield from client.init()
        yield from client.publish("k", 1)
        yield Sleep(1e-3)
        found1, _ = yield from client.lookup("k")
        yield from client.unpublish("k")
        yield Sleep(1e-3)
        found2, _ = yield from client.lookup("k")
        return (found1, found2)

    assert run_procs(cluster, flow()) == [(True, False)]


def test_republish_overwrites():
    cluster, job = make_job()

    def flow():
        client = job.client(0)
        yield from client.init()
        yield from client.publish("k", "old")
        yield from client.publish("k", "new")
        yield Sleep(1e-3)
        return (yield from client.lookup("k"))

    assert run_procs(cluster, flow()) == [(True, "new")]

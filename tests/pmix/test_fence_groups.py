"""Integration tests: PMIx clients + servers + PRRTE grpcomm."""

import pytest

from repro.cluster import Cluster
from repro.machine.presets import laptop
from repro.pmix.types import (
    PMIX_ERR_TIMEOUT,
    PMIX_JOB_SIZE,
    PMIX_QUERY_NUM_PSETS,
    PMIX_QUERY_PSET_NAMES,
    PMIX_TIMEOUT,
    PmixError,
    PmixProc,
)
from tests.conftest import run_procs


def make_job(nodes=4, ranks=8, ppn=2, **kw):
    cluster = Cluster(machine=laptop(num_nodes=nodes), **kw)
    job = cluster.launch(ranks, ppn=ppn)
    return cluster, job


def test_fence_exchanges_blobs_across_nodes():
    cluster, job = make_job()

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        client.put("endpoint", f"ep-{rank}")
        yield from client.commit()
        yield from client.fence()
        # After the fence every rank can read every other rank's blob locally.
        values = []
        for peer in range(job.num_ranks):
            value = yield from client.get(job.proc(peer), "endpoint")
            values.append(value)
        return values

    results = run_procs(cluster, *(rank_proc(r) for r in range(job.num_ranks)))
    expected = [f"ep-{r}" for r in range(job.num_ranks)]
    assert all(res == expected for res in results)


def test_fence_takes_nonzero_simulated_time():
    cluster, job = make_job()

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        yield from client.commit()
        yield from client.fence()

    run_procs(cluster, *(rank_proc(r) for r in range(job.num_ranks)))
    assert cluster.now > 0


def test_group_construct_agrees_on_pgcid():
    cluster, job = make_job()

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        procs = [job.proc(r) for r in range(job.num_ranks)]
        pgcid = yield from client.group_construct("grp-all", procs)
        return pgcid

    results = run_procs(cluster, *(rank_proc(r) for r in range(job.num_ranks)))
    assert len(set(results)) == 1
    assert results[0] >= 1  # PGCIDs are non-zero


def test_distinct_groups_get_distinct_pgcids():
    cluster, job = make_job()

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        all_procs = [job.proc(r) for r in range(job.num_ranks)]
        evens = [job.proc(r) for r in range(0, job.num_ranks, 2)]
        pgcid_all = yield from client.group_construct("g-all", all_procs)
        pgcid_sub = None
        if rank % 2 == 0:
            pgcid_sub = yield from client.group_construct("g-even", evens)
        return (pgcid_all, pgcid_sub)

    results = run_procs(cluster, *(rank_proc(r) for r in range(job.num_ranks)))
    alls = {a for a, _ in results}
    subs = {s for _, s in results if s is not None}
    assert len(alls) == 1 and len(subs) == 1
    assert alls != subs


def test_group_destruct_removes_record():
    cluster, job = make_job(nodes=2, ranks=4, ppn=2)

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        procs = [job.proc(r) for r in range(job.num_ranks)]
        yield from client.group_construct("gone", procs)
        yield from client.group_destruct("gone", procs)

    run_procs(cluster, *(rank_proc(r) for r in range(4)))
    for server in cluster.servers[:2]:
        assert "gone" not in server.groups


def test_group_construct_timeout_when_member_absent():
    cluster, job = make_job(nodes=2, ranks=4, ppn=2)

    def present(rank):
        client = job.client(rank)
        yield from client.init()
        procs = [job.proc(r) for r in range(4)]
        with pytest.raises(PmixError) as err:
            yield from client.group_construct(
                "g-timeout", procs, {PMIX_TIMEOUT: 0.5}
            )
        assert err.value.status == PMIX_ERR_TIMEOUT
        return "timed-out"

    # Rank 3 never joins the group.
    def absent(rank):
        client = job.client(rank)
        yield from client.init()
        return "absent"

    results = run_procs(
        cluster, present(0), present(1), present(2), absent(3)
    )
    assert results == ["timed-out"] * 3 + ["absent"]


def test_query_psets_and_job_size():
    cluster, job = make_job(nodes=2, ranks=4, ppn=2)
    cluster.psets.define("app/ocean", [job.proc(0), job.proc(1)])

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        out = yield from client.query(
            [PMIX_QUERY_NUM_PSETS, PMIX_QUERY_PSET_NAMES, PMIX_JOB_SIZE]
        )
        members = yield from client.pset_membership("app/ocean")
        return out, members

    results = run_procs(cluster, *(rank_proc(r) for r in range(4)))
    out, members = results[0]
    assert out[PMIX_QUERY_NUM_PSETS] == 1
    assert out[PMIX_QUERY_PSET_NAMES] == ["app/ocean"]
    assert out[PMIX_JOB_SIZE] == 4
    assert members == (job.proc(0), job.proc(1))


def test_dmodex_without_fence():
    """Direct modex: get remote data that was committed but never fenced."""
    cluster, job = make_job(nodes=2, ranks=2, ppn=1)
    sync = []

    def publisher():
        client = job.client(0)
        yield from client.init()
        client.put("addr", "node0-nic")
        yield from client.commit()
        sync.append(True)

    def reader():
        client = job.client(1)
        yield from client.init()
        # Busy-wait (simulated) until the publisher committed.
        from repro.simtime.process import Sleep

        while not sync:
            yield Sleep(1e-4)
        value = yield from client.get(job.proc(0), "addr")
        return value

    results = run_procs(cluster, publisher(), reader())
    assert results[1] == "node0-nic"


def test_event_notification_reaches_all_registered():
    cluster, job = make_job(nodes=2, ranks=4, ppn=2)
    seen = []

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        client.register_event_handler([123], lambda code, src, info: seen.append((rank, code, src.rank)))
        if rank == 0:
            from repro.simtime.process import Sleep

            yield Sleep(0.01)
            client.notify_event(123, {"why": "test"})
        yield from _drain()

    def _drain():
        from repro.simtime.process import Sleep

        yield Sleep(0.1)

    run_procs(cluster, *(rank_proc(r) for r in range(4)))
    assert sorted(seen) == [(0, 123, 0), (1, 123, 0), (2, 123, 0), (3, 123, 0)]


@pytest.mark.parametrize("mode,radix", [("tree", 2), ("tree", 4), ("flat", 2)])
def test_group_construct_all_grpcomm_modes(mode, radix):
    cluster, job = make_job(nodes=4, ranks=8, ppn=2, grpcomm_mode=mode, grpcomm_radix=radix)

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        procs = [job.proc(r) for r in range(8)]
        pgcid = yield from client.group_construct("g", procs)
        return pgcid

    results = run_procs(cluster, *(rank_proc(r) for r in range(8)))
    assert len(set(results)) == 1

"""Unit tests for PMIx identifiers and the key-value datastore."""

import pytest

from repro.pmix.datastore import Datastore, _value_size
from repro.pmix.types import (
    PMIX_ERR_TIMEOUT,
    PMIX_RANK_WILDCARD,
    PMIX_SUCCESS,
    PmixError,
    PmixInfo,
    PmixProc,
    info_dict,
    lookup_info,
    status_name,
)


class TestPmixProc:
    def test_equality_and_hash(self):
        a = PmixProc("job", 3)
        b = PmixProc("job", 3)
        assert a == b and hash(a) == hash(b)
        assert a != PmixProc("job", 4)
        assert a != PmixProc("other", 3)

    def test_ordering(self):
        procs = [PmixProc("job", 2), PmixProc("job", 0), PmixProc("a", 5)]
        assert sorted(procs) == [PmixProc("a", 5), PmixProc("job", 0), PmixProc("job", 2)]

    def test_not_equal_to_other_types(self):
        assert PmixProc("job", 1) != ("job", 1)

    def test_str_wildcard(self):
        assert str(PmixProc("ns", PMIX_RANK_WILDCARD)) == "ns:*"
        assert str(PmixProc("ns", 7)) == "ns:7"

    def test_usable_as_dict_key(self):
        d = {PmixProc("j", i): i for i in range(100)}
        assert d[PmixProc("j", 42)] == 42


class TestStatus:
    def test_status_names(self):
        assert status_name(PMIX_SUCCESS) == "PMIX_SUCCESS"
        assert status_name(PMIX_ERR_TIMEOUT) == "PMIX_ERR_TIMEOUT"
        assert "9999" in status_name(9999)

    def test_error_carries_status(self):
        err = PmixError(PMIX_ERR_TIMEOUT, "too slow")
        assert err.status == PMIX_ERR_TIMEOUT
        assert "too slow" in str(err)


class TestInfoHelpers:
    def test_info_dict_from_pairs(self):
        assert info_dict([("a", 1), ("b", 2)]) == {"a": 1, "b": 2}

    def test_info_dict_from_pmixinfo(self):
        assert info_dict([PmixInfo("k", "v")]) == {"k": "v"}

    def test_info_dict_from_dict_copies(self):
        src = {"x": 1}
        out = info_dict(src)
        out["y"] = 2
        assert "y" not in src

    def test_info_dict_none(self):
        assert info_dict(None) == {}

    def test_lookup_info(self):
        assert lookup_info([("k", 5)], "k") == 5
        assert lookup_info([("k", 5)], "missing", "dflt") == "dflt"


class TestDatastore:
    def test_put_get_rank_data(self):
        ds = Datastore()
        p = PmixProc("ns", 0)
        ds.put(p, "key", "value")
        assert ds.get(p, "key") == (True, "value")

    def test_get_missing(self):
        ds = Datastore()
        assert ds.get(PmixProc("ns", 0), "nope") == (False, None)

    def test_job_level_fallback(self):
        ds = Datastore()
        ds.put_job("ns", "size", 64)
        # Any rank in the namespace sees job-level data.
        assert ds.get(PmixProc("ns", 5), "size") == (True, 64)

    def test_rank_data_shadows_job_data(self):
        ds = Datastore()
        ds.put_job("ns", "k", "job")
        ds.put(PmixProc("ns", 1), "k", "rank")
        assert ds.get(PmixProc("ns", 1), "k") == (True, "rank")
        assert ds.get(PmixProc("ns", 2), "k") == (True, "job")

    def test_namespaces_isolated(self):
        ds = Datastore()
        ds.put(PmixProc("a", 0), "k", 1)
        assert ds.get(PmixProc("b", 0), "k") == (False, None)

    def test_rank_blob_and_merge(self):
        ds1, ds2 = Datastore(), Datastore()
        p = PmixProc("ns", 0)
        ds1.put(p, "x", 1)
        ds1.put(p, "y", 2)
        ds2.merge_blob(p, ds1.rank_blob(p))
        assert ds2.get(p, "x") == (True, 1)
        assert ds2.get(p, "y") == (True, 2)

    def test_rank_blob_is_a_copy(self):
        ds = Datastore()
        p = PmixProc("ns", 0)
        ds.put(p, "x", 1)
        blob = ds.rank_blob(p)
        blob["x"] = 99
        assert ds.get(p, "x") == (True, 1)

    def test_drop_namespace(self):
        ds = Datastore()
        ds.put(PmixProc("ns", 0), "k", 1)
        ds.drop_namespace("ns")
        assert ds.get(PmixProc("ns", 0), "k") == (False, None)

    def test_has(self):
        ds = Datastore()
        p = PmixProc("ns", 0)
        assert not ds.has(p, "k")
        ds.put(p, "k", None)
        assert ds.has(p, "k")

    def test_size_estimate_grows(self):
        ds = Datastore()
        p = PmixProc("ns", 0)
        base = ds.size_estimate()
        ds.put(p, "key", "x" * 1000)
        assert ds.size_estimate() >= base + 1000


class TestValueSize:
    @pytest.mark.parametrize(
        "value,minimum",
        [(b"12345", 5), ("abc", 3), (7, 8), ([1, 2, 3], 24), ({"k": 1}, 9)],
    )
    def test_sizes(self, value, minimum):
        assert _value_size(value) >= minimum

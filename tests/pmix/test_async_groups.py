"""Asynchronous PMIx group construction (invite/join model, §III-A)."""

import pytest

from repro.cluster import Cluster
from repro.machine.presets import laptop
from repro.pmix.async_groups import PMIX_GROUP_LEFT
from repro.simtime.process import Sleep
from tests.conftest import run_procs


def make_job(nodes=2, ranks=4, ppn=2):
    cluster = Cluster(machine=laptop(num_nodes=nodes))
    job = cluster.launch(ranks, ppn=ppn)
    return cluster, job


def init_all(job, accept=lambda rank: True):
    """Per-rank init generator registering an invite handler."""

    def prog(rank, body):
        def main():
            client = job.client(rank)
            yield from client.init()
            client.set_invite_handler(lambda gid, inviter, info: accept(rank))
            result = yield from body(client)
            return result

        return main()

    return prog


class TestInviteJoin:
    def test_all_accept(self):
        cluster, job = make_job()
        ready = []

        def inviter(client):
            result = yield from client.group_invite(
                "g1", [job.proc(r) for r in range(4)]
            )
            return result

        def invitee(client):
            client.set_group_ready_handler(
                lambda gid, pgcid, members: ready.append((client.proc.rank, pgcid))
            )
            yield Sleep(5e-3)  # stay alive long enough to get the callback

        prog = init_all(job)
        results = run_procs(
            cluster,
            prog(0, inviter),
            prog(1, invitee),
            prog(2, invitee),
            prog(3, invitee),
        )
        result = results[0]
        assert result.pgcid >= 1
        assert [p.rank for p in result.members] == [0, 1, 2, 3]
        assert result.declined == () and result.timed_out == ()
        # Every joined member heard about it with the same PGCID.
        assert sorted(ready) == [(1, result.pgcid), (2, result.pgcid), (3, result.pgcid)]

    def test_decliner_excluded(self):
        cluster, job = make_job()

        def inviter(client):
            return (yield from client.group_invite("g2", [job.proc(r) for r in range(4)]))

        def invitee(client):
            yield Sleep(5e-3)

        prog = init_all(job, accept=lambda rank: rank != 2)
        results = run_procs(
            cluster, prog(0, inviter), prog(1, invitee), prog(2, invitee), prog(3, invitee)
        )
        result = results[0]
        assert [p.rank for p in result.members] == [0, 1, 3]
        assert [p.rank for p in result.declined] == [2]

    def test_unregistered_target_counts_as_decline(self):
        cluster, job = make_job()

        def inviter(client):
            return (
                yield from client.group_invite(
                    "g3", [job.proc(1), job.proc(3)], timeout=1e-3
                )
            )

        def responsive(client):
            yield Sleep(5e-3)

        # rank 3 never initializes PMIx at all.
        def dead(rank):
            def main():
                yield Sleep(5e-3)

            return main()

        prog = init_all(job)
        results = run_procs(
            cluster, prog(0, inviter), prog(1, responsive), dead(2), dead(3)
        )
        result = results[0]
        assert [p.rank for p in result.members] == [0, 1]
        # Rank 3 had no client registered: the server answers "decline"
        # on its behalf immediately, so it lands in declined.
        assert [p.rank for p in result.declined] == [3]

    def test_deferring_target_times_out(self):
        """A handler returning None never answers; the initiator's
        timeout drops it into timed_out."""
        cluster, job = make_job()

        def inviter(client):
            t0 = cluster.now
            result = yield from client.group_invite(
                "g4", [job.proc(1), job.proc(2)], timeout=2e-3
            )
            return (result, cluster.now - t0)

        def joiner(client):
            yield Sleep(10e-3)

        def deferrer(client):
            client.set_invite_handler(lambda gid, inviter, info: None)
            yield Sleep(10e-3)

        prog = init_all(job)
        results = run_procs(cluster, prog(0, inviter), prog(1, joiner), prog(2, deferrer))
        result, elapsed = results[0]
        assert [p.rank for p in result.members] == [0, 1]
        assert [p.rank for p in result.timed_out] == [2]
        assert elapsed >= 2e-3  # the full timeout was waited out

    def test_invite_of_nobody(self):
        cluster, job = make_job()

        def inviter(client):
            return (yield from client.group_invite("solo", [job.proc(0)]))

        prog = init_all(job)
        result = run_procs(cluster, prog(0, inviter))[0]
        assert [p.rank for p in result.members] == [0]


class TestLeave:
    def test_leave_notifies_survivors_and_updates_record(self):
        cluster, job = make_job()
        events = []

        def inviter(client):
            result = yield from client.group_invite(
                "team", [job.proc(r) for r in range(3)]
            )
            client.register_event_handler(
                [PMIX_GROUP_LEFT],
                lambda code, src, info: events.append((src.rank, info["gid"])),
            )
            yield Sleep(10e-3)
            record = client.server.groups.get("team")
            return (result.pgcid, tuple(m.rank for m in record.members))

        def leaver(client):
            yield Sleep(2e-3)
            yield from client.group_leave("team")
            yield Sleep(8e-3)

        def bystander(client):
            yield Sleep(10e-3)

        prog = init_all(job)
        results = run_procs(cluster, prog(0, inviter), prog(1, leaver), prog(2, bystander))
        pgcid, members = results[0]
        assert members == (0, 2)          # rank 1 departed
        assert (1, "team") in events      # survivor was notified

"""Cache robustness: checksummed envelopes, quarantine, chaos writes."""

from __future__ import annotations

import json

import pytest

from repro.chaos import ChaosPlan
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.sweep import (
    ENVELOPE_KEY,
    ENVELOPE_VERSION,
    SweepCache,
    SweepPoint,
    cache_key,
    result_digest,
    run_sweep,
)

pytestmark = pytest.mark.chaos


def point_fn(x: int = 0) -> dict:
    return {"x": x, "y": x * x}


def _points(n=4):
    return [SweepPoint("chaos-cache", point_fn, {"x": i}) for i in range(n)]


class TestChecksumEnvelope:
    def test_round_trip(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = cache_key("s", {"p": 1})
        cache.put(key, {"v": [1, 2]})
        assert cache.get(key) == {"v": [1, 2]}
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        assert entry[ENVELOPE_KEY] == ENVELOPE_VERSION
        assert entry["sha256"] == result_digest({"v": [1, 2]})

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = cache_key("s", {})
        cache.put(key, {"v": 1})
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["result"] = {"v": 2}      # tampered payload, stale checksum
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert not path.exists()
        assert (tmp_path / f"{key}.json.corrupt").exists()
        assert cache.corrupt == 1

    def test_missing_envelope_is_quarantined(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = cache_key("s", {})
        (tmp_path / f"{key}.json").write_text(json.dumps({"v": 1}))
        assert cache.get(key) is None
        assert (tmp_path / f"{key}.json.corrupt").exists()

    def test_absent_entry_is_a_plain_miss_not_corruption(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        assert cache.get(cache_key("s", {})) is None
        assert (cache.misses, cache.corrupt) == (1, 0)

    def test_quarantine_emits_metric_and_event(self, tmp_path):
        metrics = MetricsRegistry(enabled=True)
        log_path = str(tmp_path / "events.jsonl")
        events = EventLog(log_path)
        cache = SweepCache(str(tmp_path / "cache"), metrics=metrics,
                           events=events)
        key = cache_key("s", {})
        (tmp_path / "cache" / f"{key}.json").write_text("torn{")
        assert cache.get(key) is None
        events.close()
        assert metrics.value("sweep.cache.corrupt") == 1
        recorded = EventLog.read(log_path)
        assert [e["event"] for e in recorded] == ["sweep.cache.corrupt"]
        assert recorded[0]["reason"] == "unparseable JSON"
        assert recorded[0]["digest"] == key


class TestChaosWrites:
    def test_torn_write_fails_once_then_recomputes(self, tmp_path):
        plan = ChaosPlan().torn_write(after_count=1)
        cache = SweepCache(str(tmp_path), chaos=plan)
        key = cache_key("s", {})
        cache.put(key, {"v": 1})
        raw = (tmp_path / f"{key}.json").read_text()
        with pytest.raises(ValueError):
            json.loads(raw)             # genuinely torn on disk
        assert cache.get(key) is None   # quarantined...
        cache.put(key, {"v": 1})        # ...recomputed write is clean
        assert cache.get(key) == {"v": 1}
        assert plan.stats == {"torn_write": 1}

    def test_corrupt_write_is_rejected_by_checksum(self, tmp_path):
        plan = ChaosPlan().corrupt_cache(after_count=1)
        cache = SweepCache(str(tmp_path), chaos=plan)
        key = cache_key("s", {})
        cache.put(key, {"value": "a" * 64})
        assert cache.get(key) is None
        assert cache.corrupt == 1


class TestSweepParityUnderCorruption:
    def test_parallel_sweep_byte_parity_with_corrupt_entry_mid_sweep(
            self, tmp_path):
        """A cache entry corrupted between two sweeps must be
        quarantined and recomputed — parallel results stay
        byte-identical to the clean serial run."""
        points = _points()
        clean = run_sweep(points)
        cache = SweepCache(str(tmp_path))
        assert run_sweep(points, jobs=2, cache=cache) == clean
        # Corrupt one entry on disk "mid-sweep" (between populating and
        # re-reading, as a racing writer death would).
        victim = tmp_path / f"{points[1].key()}.json"
        victim.write_text(victim.read_text()[:20])
        reread = SweepCache(str(tmp_path))
        assert run_sweep(points, jobs=2, cache=reread) == clean
        assert reread.corrupt == 1
        assert (reread.hits, reread.misses) == (3, 1)
        # And the recompute healed the cache for the next run.
        healed = SweepCache(str(tmp_path))
        assert run_sweep(points, jobs=2, cache=healed) == clean
        assert healed.hits == 4

    def test_injected_corruption_during_sweep_holds_parity(self, tmp_path):
        points = _points()
        clean = run_sweep(points)
        plan = ChaosPlan().corrupt_cache(after_count=2).torn_write(
            after_count=3)
        damaged = SweepCache(str(tmp_path), chaos=plan)
        assert run_sweep(points, jobs=2, cache=damaged) == clean
        reread = SweepCache(str(tmp_path))
        assert run_sweep(points, jobs=2, cache=reread) == clean
        assert reread.corrupt == 2

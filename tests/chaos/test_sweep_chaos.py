"""run_sweep hardening: crash isolation, checkpoint/resume, crash_point."""

from __future__ import annotations

import json

import pytest

from repro.chaos import ChaosPlan
from repro.sweep import (
    SweepCache,
    SweepPoint,
    SweepPointCrash,
    error_record,
    is_error_record,
    run_sweep,
)

pytestmark = pytest.mark.chaos


def ok_fn(x: int = 0) -> dict:
    return {"x": x}


def bomb_fn(x: int = 0) -> dict:
    raise RuntimeError(f"boom at {x}")


def counting_fn(x: int = 0, calls_dir: str = "") -> dict:
    """Deterministic result with an on-disk call-count side channel, so
    resume tests can prove which points were recomputed."""
    import os
    path = os.path.join(calls_dir, f"calls-{x}")
    n = int(open(path).read()) if os.path.exists(path) else 0
    with open(path, "w") as fh:
        fh.write(str(n + 1))
    return {"x": x}


def _calls(tmp_path, x: int) -> int:
    p = tmp_path / f"calls-{x}"
    return int(p.read_text()) if p.exists() else 0


class TestIsolation:
    def test_default_still_propagates(self):
        points = [SweepPoint("s", ok_fn, {"x": 0}),
                  SweepPoint("s", bomb_fn, {"x": 1})]
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(points)

    def test_isolate_yields_error_record_and_completes(self):
        points = [SweepPoint("s", ok_fn, {"x": 0}),
                  SweepPoint("s", bomb_fn, {"x": 1}),
                  SweepPoint("s", ok_fn, {"x": 2})]
        results = run_sweep(points, isolate=True)
        assert results[0] == {"x": 0} and results[2] == {"x": 2}
        assert is_error_record(results[1])
        err = results[1]["sweep_error"]
        assert err["type"] == "RuntimeError" and "boom at 1" in err["message"]

    def test_isolate_parallel_matches_serial(self):
        points = [SweepPoint("s", bomb_fn if i == 2 else ok_fn, {"x": i})
                  for i in range(4)]
        assert run_sweep(points, jobs=2, isolate=True) \
            == run_sweep(points, isolate=True)

    def test_error_records_are_never_cached(self, tmp_path):
        points = [SweepPoint("s", bomb_fn, {"x": 1})]
        cache = SweepCache(str(tmp_path))
        results = run_sweep(points, isolate=True, cache=cache)
        assert is_error_record(results[0])
        assert list(tmp_path.glob("*.json")) == []

    def test_error_record_shape(self):
        rec = error_record("s", ValueError("nope"))
        assert is_error_record(rec)
        assert not is_error_record({"x": 1})
        assert not is_error_record(42)


class TestCheckpoint:
    def test_resume_skips_completed_points(self, tmp_path):
        points = [SweepPoint("s", counting_fn,
                             {"x": i, "calls_dir": str(tmp_path)})
                  for i in range(3)]
        ckpt = str(tmp_path / "sweep.ckpt")
        first = run_sweep(points, checkpoint=ckpt)
        assert [_calls(tmp_path, i) for i in range(3)] == [1, 1, 1]
        assert run_sweep(points, checkpoint=ckpt) == first
        # Nothing recomputed: the checkpoint answered every point.
        assert [_calls(tmp_path, i) for i in range(3)] == [1, 1, 1]

    def test_interrupted_sweep_resumes_where_it_left_off(self, tmp_path):
        points = [SweepPoint("s", counting_fn,
                             {"x": i, "calls_dir": str(tmp_path)})
                  for i in range(4)]
        ckpt = str(tmp_path / "sweep.ckpt")
        # Simulate an interrupt after two points: checkpoint only those.
        run_sweep(points[:2], checkpoint=ckpt)
        assert [_calls(tmp_path, i) for i in range(4)] == [1, 1, 0, 0]
        resumed = run_sweep(points, checkpoint=ckpt)
        assert resumed == [{"x": i} for i in range(4)]
        # Only the missing tail was computed.
        assert [_calls(tmp_path, i) for i in range(4)] == [1, 1, 1, 1]

    def test_torn_checkpoint_tail_is_skipped(self, tmp_path):
        points = [SweepPoint("s", counting_fn,
                             {"x": i, "calls_dir": str(tmp_path)})
                  for i in range(2)]
        ckpt = tmp_path / "sweep.ckpt"
        run_sweep(points, checkpoint=str(ckpt))
        lines = ckpt.read_text().splitlines()
        ckpt.write_text(lines[0] + "\n" + lines[1][:10])    # torn tail
        resumed = run_sweep(points, checkpoint=str(ckpt))
        assert resumed == [{"x": 0}, {"x": 1}]
        assert [_calls(tmp_path, i) for i in range(2)] == [1, 2]

    def test_error_records_not_checkpointed(self, tmp_path):
        points = [SweepPoint("s", bomb_fn, {"x": 1})]
        ckpt = tmp_path / "sweep.ckpt"
        results = run_sweep(points, isolate=True, checkpoint=str(ckpt))
        assert is_error_record(results[0])
        assert ckpt.read_text() == ""

    def test_checkpoint_lines_are_canonical_json(self, tmp_path):
        points = [SweepPoint("s", ok_fn, {"x": 0})]
        ckpt = tmp_path / "sweep.ckpt"
        run_sweep(points, checkpoint=str(ckpt))
        (line,) = ckpt.read_text().splitlines()
        obj = json.loads(line)
        assert obj == {"key": points[0].key(), "result": {"x": 0}}


class TestCrashPoint:
    def test_crash_point_without_isolate_raises(self):
        plan = ChaosPlan().crash_point(after_count=2)
        points = [SweepPoint("s", ok_fn, {"x": i}) for i in range(3)]
        with pytest.raises(SweepPointCrash):
            run_sweep(points, chaos=plan)

    def test_crash_point_with_isolate_serial_parallel_parity(self):
        points = [SweepPoint("s", ok_fn, {"x": i}) for i in range(4)]
        serial = run_sweep(points, isolate=True,
                           chaos=ChaosPlan().crash_point(after_count=2))
        parallel = run_sweep(points, jobs=2, isolate=True,
                             chaos=ChaosPlan().crash_point(after_count=2))
        assert serial == parallel
        assert is_error_record(serial[1])
        assert [r for i, r in enumerate(serial) if i != 1] \
            == [{"x": 0}, {"x": 2}, {"x": 3}]

    def test_crashed_point_recomputes_on_resume(self, tmp_path):
        points = [SweepPoint("s", counting_fn,
                             {"x": i, "calls_dir": str(tmp_path)})
                  for i in range(3)]
        ckpt = str(tmp_path / "sweep.ckpt")
        plan = ChaosPlan().crash_point(after_count=2)
        first = run_sweep(points, isolate=True, checkpoint=ckpt, chaos=plan)
        assert is_error_record(first[1])
        # The resume recomputes exactly the crashed point.
        resumed = run_sweep(points, checkpoint=ckpt)
        assert resumed == [{"x": i} for i in range(3)]
        assert [_calls(tmp_path, i) for i in range(3)] == [1, 1, 1]

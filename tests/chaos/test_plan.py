"""The chaos plan model (repro.chaos): actions, counting, determinism."""

from __future__ import annotations

import pytest

from repro.chaos import (
    KINDS,
    SITE_OF,
    ChaosAction,
    ChaosPlan,
    chaos_plan,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.chaos


class TestChaosAction:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosAction("set_on_fire")

    def test_hang_needs_delay(self):
        with pytest.raises(ValueError, match="delay"):
            ChaosAction("hang_worker")
        ChaosAction("hang_worker", delay=0.01)   # fine

    def test_drop_conn_phase_validation(self):
        with pytest.raises(ValueError, match="phase"):
            ChaosAction("drop_conn", phase="before")
        for phase in ("mid", "after"):
            ChaosAction("drop_conn", phase=phase)

    def test_after_count_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            ChaosAction("kill_worker", after_count=0)

    def test_every_kind_has_a_site(self):
        assert set(SITE_OF) == set(KINDS)

    def test_fires_on_exactly_the_nth_operation(self):
        act = ChaosAction("kill_worker", after_count=3)
        assert [act.observe() for _ in range(5)] == [
            False, False, True, False, False]
        assert (act.seen, act.hits) == (5, 1)

    def test_max_hits_budget_without_count(self):
        act = ChaosAction("kill_worker", max_hits=2)
        assert [act.observe() for _ in range(4)] == [True, True, False, False]

    def test_unlimited_hits(self):
        act = ChaosAction("kill_worker", max_hits=None)
        assert all(act.observe() for _ in range(10))

    def test_scenario_filter_does_not_count_others(self):
        act = ChaosAction("kill_worker", after_count=2, scenario="sim")
        assert act.observe("sleep") is False
        assert act.seen == 0                     # non-matching ops don't count
        assert act.observe("sim") is False
        assert act.observe("sim") is True


class TestChaosPlan:
    def test_on_counts_and_fires_per_site(self):
        plan = ChaosPlan().kill_worker(after_count=2).torn_write(after_count=1)
        assert plan.on("worker.call") == []
        fired = plan.on("worker.call")
        assert [a.kind for a in fired] == ["kill_worker"]
        assert [a.kind for a in plan.on("cache.put")] == ["torn_write"]
        assert plan.stats == {"kill_worker": 1, "torn_write": 1}
        assert plan.injected == 2

    def test_convenience_constructors_chain(self):
        plan = (ChaosPlan().kill_worker().hang_worker(0.01).break_pipe()
                .drop_conn("after").corrupt_cache().torn_write().crash_point())
        assert len(plan) == 7
        assert "drop_conn" in plan.describe()

    def test_add_rejects_non_actions(self):
        with pytest.raises(TypeError):
            ChaosPlan().add("kill_worker")

    def test_attached_recorders_see_injections(self, tmp_path):
        metrics = MetricsRegistry(enabled=True)
        log_path = str(tmp_path / "events.jsonl")
        events = EventLog(log_path)
        plan = ChaosPlan().kill_worker(after_count=1)
        plan.attach(metrics=metrics, events=events)
        plan.on("worker.call", scenario="sim", wid=3)
        events.close()
        assert metrics.value("chaos.injected",
                             kind="kill_worker", site="worker.call") == 1
        recorded = EventLog.read(log_path)
        assert len(recorded) == 1
        assert recorded[0]["event"] == "chaos.injected"
        assert recorded[0]["kind"] == "kill_worker"
        assert recorded[0]["wid"] == 3


class TestSeededPlan:
    def test_same_seed_same_plan(self):
        a, b = chaos_plan(7), chaos_plan(7)
        assert a.describe() == b.describe()
        assert chaos_plan(8).describe() != a.describe()

    def test_budgets_hold_over_many_seeds(self):
        for seed in range(40):
            plan = chaos_plan(seed, n_actions=8)
            kinds = [act.kind for act in plan.actions]
            kills = sum(1 for k in kinds
                        if k in ("kill_worker", "break_pipe"))
            drops = sum(1 for k in kinds if k == "drop_conn")
            assert kills <= 2 and drops <= 2

    def test_actions_pin_distinct_operation_indexes(self):
        for seed in range(40):
            plan = chaos_plan(seed, n_actions=8)
            by_site = {}
            for act in plan.actions:
                by_site.setdefault(act.site, []).append(act.after_count)
            for site, counts in by_site.items():
                assert len(counts) == len(set(counts)), (seed, site)

    def test_kinds_restriction(self):
        plan = chaos_plan(3, kinds=("corrupt_cache", "torn_write"),
                          n_actions=6)
        assert {a.kind for a in plan.actions} <= {"corrupt_cache",
                                                  "torn_write"}

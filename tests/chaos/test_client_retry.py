"""Client hardening: connect retry, reconnect-and-resubmit under drops."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.chaos import ChaosPlan
from repro.serve import AsyncServeClient, ServeAddress, ServeClient, \
    ServerThread

pytestmark = pytest.mark.chaos


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestConnectRetry:
    def test_sync_client_raises_after_bounded_retries(self):
        with pytest.raises(OSError):
            ServeClient(ServeAddress(port=_free_port()), retries=1,
                        retry_base=0.001)

    def test_async_client_raises_after_bounded_retries(self):
        async def go():
            await AsyncServeClient.connect(ServeAddress(port=_free_port()),
                                           retries=1, retry_base=0.001)
        with pytest.raises(OSError):
            asyncio.run(go())

    def test_connect_retry_wins_when_server_appears(self):
        """The server binds between the first (failing) and a later
        connect attempt — the client must come up without an error."""
        port = _free_port()
        import threading
        srv_box = {}

        def boot():
            srv_box["srv"] = ServerThread(
                workers=1, address=ServeAddress(port=port)).__enter__()

        t = threading.Timer(0.15, boot)
        t.start()
        try:
            with ServeClient(ServeAddress(port=port), retries=8,
                             retry_base=0.05) as client:
                assert client.health()["status"] == "ok"
        finally:
            t.join()
            srv_box["srv"].__exit__(None, None, None)


class TestDropResubmit:
    def test_drop_mid_line_is_resubmitted(self):
        plan = ChaosPlan().drop_conn("mid", after_count=1)
        with ServerThread(workers=1) as srv:
            with ServeClient(srv.address, retries=2,
                             retry_base=0.001, chaos=plan) as client:
                r = client.submit("sleep", {"seconds": 0.0, "tag": "t"})
                assert r["status"] == "ok"
                assert r["result"]["tag"] == "t"
                assert (client.reconnects, client.resubmits) == (1, 1)
        assert plan.stats == {"drop_conn": 1}

    def test_drop_after_send_is_resubmitted_without_recompute(self):
        """Reply lost after the server computed: the resubmit must be
        answered from cache/single-flight, not recomputed."""
        plan = ChaosPlan().drop_conn("after", after_count=1)
        with ServerThread(workers=1, cache_dir=None) as srv:
            # No cache: the dropped-reply request is recomputed, which
            # is still correct for deterministic scenarios.
            with ServeClient(srv.address, retries=2,
                             retry_base=0.001, chaos=plan) as client:
                r = client.submit("sleep", {"seconds": 0.0})
                assert r["status"] == "ok"
                assert client.resubmits == 1

    def test_drop_after_send_is_deduplicated_by_the_server(self, tmp_path):
        """Reply lost after the server computed: the resubmit is
        answered from the cache (first delivery already finished) or by
        coalescing onto it (still in flight) — either way the scenario
        ran exactly once."""
        plan = ChaosPlan().drop_conn("after", after_count=1)
        with ServerThread(workers=1, cache_dir=str(tmp_path)) as srv:
            with ServeClient(srv.address, retries=2,
                             retry_base=0.001, chaos=plan) as client:
                r = client.submit("sleep", {"seconds": 0.0})
                assert r["status"] == "ok"
            stats = srv.server.stats
            assert stats.cache_hits + stats.coalesced == 1
            assert srv.server.metrics.merged_histogram("serve.run").count == 1

    def test_retry_budget_exhausted_raises(self):
        plan = (ChaosPlan().drop_conn("mid", after_count=1)
                .drop_conn("mid", after_count=2))
        with ServerThread(workers=1) as srv:
            with ServeClient(srv.address, retries=1,
                             retry_base=0.001, chaos=plan) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.submit("sleep", {"seconds": 0.0})

    def test_retry_deadline_caps_the_retry_loop(self):
        plan = ChaosPlan().drop_conn("mid", max_hits=None)
        with ServerThread(workers=1) as srv:
            with ServeClient(srv.address, retries=50,
                             retry_base=0.5, retry_deadline_s=0.05,
                             chaos=plan) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.submit("sleep", {"seconds": 0.0})
        # Far fewer sends than the nominal 50-retry budget.
        assert plan.stats["drop_conn"] <= 3

    def test_backoff_is_seeded_and_deterministic(self):
        a = ServeClient.__new__(ServeClient)
        a.retry_seed, a.retry_base = 7, 0.05
        b = ServeClient.__new__(ServeClient)
        b.retry_seed, b.retry_base = 7, 0.05
        assert [a._backoff(i) for i in (1, 2, 3)] \
            == [b._backoff(i) for i in (1, 2, 3)]
        c = ServeClient.__new__(ServeClient)
        c.retry_seed, c.retry_base = 8, 0.05
        assert a._backoff(1) != c._backoff(1)

"""The server circuit breaker: trip, degraded cache-only mode, half-open."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.chaos import degraded_run
from repro.serve import AsyncServeClient, ServeClient, ServerThread

pytestmark = pytest.mark.chaos


def _flaky(client: ServeClient, state_dir, key: str) -> dict:
    """One guaranteed hard worker death (no retry budget on the server)."""
    return client.submit("flaky", {"state_dir": str(state_dir), "key": key,
                                   "crashes": 9})


def _server(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("retry_limit", 0)
    kw.setdefault("breaker_threshold", 2)
    kw.setdefault("breaker_cooldown_s", 3600.0)
    kw.setdefault("cache_dir", str(tmp_path / "cache"))
    return ServerThread(**kw)


class TestTrip:
    def test_consecutive_deaths_trip_the_breaker(self, tmp_path):
        with _server(tmp_path) as srv:
            with ServeClient(srv.address) as client:
                assert client.health()["degraded"] is False
                assert _flaky(client, tmp_path, "a")["status"] == "error"
                assert client.health()["degraded"] is False    # 1 < threshold
                assert _flaky(client, tmp_path, "b")["status"] == "error"
                health = client.health()
                assert health["degraded"] is True
                assert health["breaker"]["trips"] == 1
                assert health["breaker"]["consecutive_deaths"] == 2
            assert srv.server.stats.breaker_trips == 1
            assert srv.server.metrics.value("serve.breaker.trips") == 1

    def test_success_resets_the_death_streak(self, tmp_path):
        with _server(tmp_path) as srv:
            with ServeClient(srv.address) as client:
                assert _flaky(client, tmp_path, "a")["status"] == "error"
                assert client.submit("sleep",
                                     {"seconds": 0.0})["status"] == "ok"
                assert _flaky(client, tmp_path, "b")["status"] == "error"
                # Never 2 *consecutive* deaths: breaker stays closed.
                assert client.health()["degraded"] is False
            assert srv.server.stats.breaker_trips == 0


class TestDegradedMode:
    def test_cache_only_service_while_degraded(self, tmp_path):
        with _server(tmp_path) as srv:
            with ServeClient(srv.address) as client:
                warm = client.submit("sleep", {"seconds": 0.0, "tag": "w"})
                assert warm["status"] == "ok"
                _flaky(client, tmp_path, "a")
                _flaky(client, tmp_path, "b")
                assert client.health()["degraded"] is True
                # Cached: still served, from the cache.
                hit = client.submit("sleep", {"seconds": 0.0, "tag": "w"})
                assert hit["status"] == "ok" and hit["cached"] is True
                # Uncached: rejected with a degraded reason, not crashed.
                miss = client.submit("sleep", {"seconds": 0.0, "tag": "m"})
                assert miss["status"] == "rejected"
                assert miss["reason"].startswith("degraded")
            assert srv.server.stats.degraded_rejects == 1

    def test_degraded_visible_in_stats_snapshot(self, tmp_path):
        with _server(tmp_path) as srv:
            with ServeClient(srv.address) as client:
                _flaky(client, tmp_path, "a")
                _flaky(client, tmp_path, "b")
                stats = client.stats()["stats"]
                assert stats["degraded"] is True
                assert stats["breaker_trips"] == 1


class TestHalfOpen:
    def test_cooldown_reopens_admission(self, tmp_path):
        with _server(tmp_path, breaker_cooldown_s=0.2) as srv:
            with ServeClient(srv.address) as client:
                _flaky(client, tmp_path, "a")
                _flaky(client, tmp_path, "b")
                assert client.health()["degraded"] is True
                time.sleep(0.25)
                # Half-open: the probe request reaches the pool again.
                r = client.submit("sleep", {"seconds": 0.0})
                assert r["status"] == "ok"
                assert client.health()["degraded"] is False

    def test_death_during_half_open_retrips_immediately(self, tmp_path):
        with _server(tmp_path, breaker_cooldown_s=0.2) as srv:
            with ServeClient(srv.address) as client:
                _flaky(client, tmp_path, "a")
                _flaky(client, tmp_path, "b")
                time.sleep(0.25)
                assert _flaky(client, tmp_path, "c")["status"] == "error"
                assert client.health()["degraded"] is True
            assert srv.server.stats.breaker_trips == 2


class TestSingleFlight:
    def test_concurrent_same_key_submits_coalesce(self, tmp_path):
        async def go(address):
            client = await AsyncServeClient.connect(address)
            try:
                return await asyncio.gather(
                    client.submit("sleep", {"seconds": 0.1, "tag": "sf"}),
                    client.submit("sleep", {"seconds": 0.1, "tag": "sf"}))
            finally:
                await client.close()

        with _server(tmp_path, retry_limit=2) as srv:
            r1, r2 = asyncio.run(go(srv.address))
            assert r1["status"] == r2["status"] == "ok"
            assert r1["result"] == r2["result"]
            coalesced = [r.get("coalesced", False) for r in (r1, r2)]
            assert sorted(coalesced) == [False, True]
            stats = srv.server.stats
            assert stats.coalesced == 1
            # The scenario ran exactly once; the twin never reached a worker.
            assert srv.server.metrics.merged_histogram("serve.run").count == 1


class TestAcceptanceScenario:
    def test_degraded_run_completes_instead_of_crashing(self, tmp_path):
        record = degraded_run(str(tmp_path))
        assert record["ok"], record
        assert record["quarantined"] is True
        assert record["reject_reason"].startswith("degraded")

"""Unit tests for SimProcess effects and composition."""

import pytest

from repro.simtime.engine import Engine
from repro.simtime.primitives import SimEvent
from repro.simtime.process import (
    Join,
    Now,
    ProcessKilled,
    Self,
    SimProcess,
    SimTimeout,
    Sleep,
    Spawn,
    Wait,
    WaitAny,
)


def start(eng, gen, name="p"):
    proc = SimProcess(eng, gen, name)
    proc.start()
    return proc


def test_sleep_advances_time():
    eng = Engine()

    def p():
        yield Sleep(2.0)
        t = yield Now()
        return t

    proc = start(eng, p())
    eng.run()
    assert proc.result == 2.0


def test_return_value_captured():
    eng = Engine()

    def p():
        yield Sleep(0.1)
        return 42

    proc = start(eng, p())
    eng.run()
    assert proc.finished and proc.result == 42


def test_yield_from_composition():
    eng = Engine()

    def inner():
        yield Sleep(1.0)
        return "inner-result"

    def outer():
        value = yield from inner()
        yield Sleep(1.0)
        return value + "!"

    proc = start(eng, outer())
    eng.run()
    assert proc.result == "inner-result!"
    assert eng.now == 2.0


def test_wait_receives_event_value():
    eng = Engine()
    ev = SimEvent()

    def waiter():
        value = yield Wait(ev)
        return value

    def trigger():
        yield Sleep(1.0)
        ev.succeed("hello")

    w = start(eng, waiter())
    start(eng, trigger())
    eng.run()
    assert w.result == "hello"


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = SimEvent()
    ev.succeed(7)

    def p():
        value = yield Wait(ev)
        return value

    proc = start(eng, p())
    eng.run()
    assert proc.result == 7


def test_wait_timeout_raises():
    eng = Engine()
    never = SimEvent()

    def p():
        with pytest.raises(SimTimeout):
            yield Wait(never, timeout=1.0)
        return "survived"

    proc = start(eng, p())
    eng.run()
    assert proc.result == "survived"
    assert eng.now == 1.0


def test_wait_timeout_not_fired_when_event_first():
    eng = Engine()
    ev = SimEvent()

    def p():
        value = yield Wait(ev, timeout=5.0)
        return value

    def trigger():
        yield Sleep(1.0)
        ev.succeed("fast")

    proc = start(eng, p())
    start(eng, trigger())
    eng.run()
    assert proc.result == "fast"
    assert eng.now == pytest.approx(1.0)


def test_wait_any_returns_first():
    eng = Engine()
    a, b = SimEvent(), SimEvent()

    def p():
        idx, value = yield WaitAny([a, b])
        return idx, value

    def trigger():
        yield Sleep(1.0)
        b.succeed("bee")
        yield Sleep(1.0)
        a.succeed("ay")

    proc = start(eng, p())
    start(eng, trigger())
    eng.run()
    assert proc.result == (1, "bee")


def test_wait_any_pretriggered_lowest_index_wins():
    eng = Engine()
    a, b = SimEvent(), SimEvent()
    a.succeed("A")
    b.succeed("B")

    def p():
        return (yield WaitAny([a, b]))

    proc = start(eng, p())
    eng.run()
    assert proc.result == (0, "A")


def test_spawn_and_join():
    eng = Engine()

    def child(n):
        yield Sleep(n)
        return n * 10

    def parent():
        c1 = yield Spawn(child(1.0))
        c2 = yield Spawn(child(2.0))
        r1 = yield Join(c1)
        r2 = yield Join(c2)
        return r1 + r2

    proc = start(eng, parent())
    eng.run()
    assert proc.result == 30.0
    assert eng.now == 2.0  # children ran concurrently


def test_join_already_finished_child():
    eng = Engine()

    def child():
        yield Sleep(0.5)
        return "done"

    def parent():
        c = yield Spawn(child())
        yield Sleep(2.0)
        return (yield Join(c))

    proc = start(eng, parent())
    eng.run()
    assert proc.result == "done"


def test_join_reraises_child_exception():
    eng = Engine()

    def child():
        yield Sleep(0.5)
        raise ValueError("child boom")

    def parent():
        c = yield Spawn(child())
        with pytest.raises(ValueError, match="child boom"):
            yield Join(c)
        return "handled"

    proc = start(eng, parent())
    eng.run()
    assert proc.result == "handled"


def test_unhandled_exception_fails_fast():
    eng = Engine()

    def p():
        yield Sleep(0.5)
        raise RuntimeError("nobody watching")

    start(eng, p())
    with pytest.raises(RuntimeError, match="nobody watching"):
        eng.run()


def test_self_effect_returns_process():
    eng = Engine()

    def p():
        me = yield Self()
        return me.name

    proc = start(eng, p(), name="alice")
    eng.run()
    assert proc.result == "alice"


def test_kill_interrupts_sleep():
    eng = Engine()

    def victim():
        try:
            yield Sleep(100.0)
        except ProcessKilled:
            return "killed"
        return "survived"

    v = start(eng, victim())

    def killer():
        yield Sleep(1.0)
        v.kill("test")

    start(eng, killer())
    eng.run()
    assert v.result == "killed"
    assert eng.now == pytest.approx(1.0)


def test_kill_interrupts_wait():
    eng = Engine()
    never = SimEvent()

    def victim():
        try:
            yield Wait(never)
        except ProcessKilled:
            return "killed-in-wait"

    v = start(eng, victim())

    def killer():
        yield Sleep(1.0)
        v.kill()

    start(eng, killer())
    eng.run()
    assert v.result == "killed-in-wait"


def test_uncaught_kill_is_not_fatal():
    eng = Engine()

    def victim():
        yield Sleep(100.0)

    v = start(eng, victim())

    def killer():
        yield Sleep(1.0)
        v.kill()

    start(eng, killer())
    eng.run()  # must not raise
    assert v.finished
    assert isinstance(v.exception, ProcessKilled)


def test_yielding_garbage_is_an_error():
    eng = Engine()

    def p():
        yield "not an effect"

    proc = start(eng, p())
    proc.defuse()
    eng.run()
    assert proc.exception is not None

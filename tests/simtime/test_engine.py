"""Unit tests for the discrete-event engine."""

import pytest

from repro.simtime.engine import DeadlockError, Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_call_later_advances_clock():
    eng = Engine()
    seen = []
    eng.call_later(1.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [1.5]
    assert eng.now == 1.5


def test_events_fire_in_time_order():
    eng = Engine()
    seen = []
    eng.call_later(3.0, lambda: seen.append("c"))
    eng.call_later(1.0, lambda: seen.append("a"))
    eng.call_later(2.0, lambda: seen.append("b"))
    eng.run()
    assert seen == ["a", "b", "c"]


def test_fifo_tie_break_at_same_time():
    eng = Engine()
    seen = []
    for label in "abcde":
        eng.call_later(1.0, lambda l=label: seen.append(l))
    eng.run()
    assert seen == list("abcde")


def test_nested_scheduling_from_callback():
    eng = Engine()
    seen = []

    def outer():
        seen.append(("outer", eng.now))
        eng.call_later(0.5, lambda: seen.append(("inner", eng.now)))

    eng.call_later(1.0, outer)
    eng.run()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_schedule_in_past_rejected():
    eng = Engine()
    eng.call_later(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().call_later(-1.0, lambda: None)


def test_run_until_stops_early():
    eng = Engine()
    seen = []
    eng.call_later(1.0, lambda: seen.append(1))
    eng.call_later(5.0, lambda: seen.append(5))
    eng.run(until=2.0)
    assert seen == [1]
    assert eng.now == 2.0
    eng.run()
    assert seen == [1, 5]


def test_timer_cancel():
    eng = Engine()
    seen = []
    timer = eng.call_later(1.0, lambda: seen.append("x"))
    eng.call_later(2.0, lambda: seen.append("y"))
    timer.cancel()
    assert timer.canceled
    eng.run()
    assert seen == ["y"]


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_zero_delay_runs_at_current_time():
    eng = Engine()
    seen = []
    eng.call_later(1.0, lambda: eng.call_later(0.0, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [1.0]


def test_deadlock_detection_reports_blocked_processes():
    from repro.simtime.process import SimProcess, Wait
    from repro.simtime.primitives import SimEvent

    eng = Engine()
    never = SimEvent()

    def stuck():
        yield Wait(never)

    SimProcess(eng, stuck(), "stuck").start()
    with pytest.raises(DeadlockError, match="1 process"):
        eng.run()

"""Unit tests for the discrete-event engine."""

import pytest

from repro.simtime.engine import DeadlockError, Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_call_later_advances_clock():
    eng = Engine()
    seen = []
    eng.call_later(1.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [1.5]
    assert eng.now == 1.5


def test_events_fire_in_time_order():
    eng = Engine()
    seen = []
    eng.call_later(3.0, lambda: seen.append("c"))
    eng.call_later(1.0, lambda: seen.append("a"))
    eng.call_later(2.0, lambda: seen.append("b"))
    eng.run()
    assert seen == ["a", "b", "c"]


def test_fifo_tie_break_at_same_time():
    eng = Engine()
    seen = []
    for label in "abcde":
        eng.call_later(1.0, lambda l=label: seen.append(l))
    eng.run()
    assert seen == list("abcde")


def test_nested_scheduling_from_callback():
    eng = Engine()
    seen = []

    def outer():
        seen.append(("outer", eng.now))
        eng.call_later(0.5, lambda: seen.append(("inner", eng.now)))

    eng.call_later(1.0, outer)
    eng.run()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_schedule_in_past_rejected():
    eng = Engine()
    eng.call_later(1.0, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.call_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().call_later(-1.0, lambda: None)


def test_run_until_stops_early():
    eng = Engine()
    seen = []
    eng.call_later(1.0, lambda: seen.append(1))
    eng.call_later(5.0, lambda: seen.append(5))
    eng.run(until=2.0)
    assert seen == [1]
    assert eng.now == 2.0
    eng.run()
    assert seen == [1, 5]


def test_timer_cancel():
    eng = Engine()
    seen = []
    timer = eng.call_later(1.0, lambda: seen.append("x"))
    eng.call_later(2.0, lambda: seen.append("y"))
    timer.cancel()
    assert timer.canceled
    eng.run()
    assert seen == ["y"]


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_zero_delay_runs_at_current_time():
    eng = Engine()
    seen = []
    eng.call_later(1.0, lambda: eng.call_later(0.0, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [1.0]


def test_deadlock_detection_reports_blocked_processes():
    from repro.simtime.process import SimProcess, Wait
    from repro.simtime.primitives import SimEvent

    eng = Engine()
    never = SimEvent()

    def stuck():
        yield Wait(never)

    SimProcess(eng, stuck(), "stuck").start()
    with pytest.raises(DeadlockError, match="1 process"):
        eng.run()


# -- fast-path scheduler: ready lane, lazy deletion, run(until) edges ------
def test_heap_drains_before_ready_lane_at_same_instant():
    """The FIFO contract across lanes: heap entries due at t predate
    (smaller seq) every ready-lane entry appended at t."""
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.call_soon(lambda: order.append("chained"))

    eng.call_later(1.0, first)
    eng.call_later(1.0, lambda: order.append("second"))
    eng.run()
    assert order == ["first", "second", "chained"]


def test_same_instant_ordering_across_scheduling_apis():
    eng = Engine()
    order = []
    eng.call_at(0.0, lambda: order.append("at"))
    eng.call_soon(lambda: order.append("soon"))
    eng.call_later(0.0, lambda: order.append("later"))
    eng.run()
    assert order == ["at", "soon", "later"]


def test_ready_lane_timer_cancel():
    eng = Engine()
    fired = []
    t1 = eng.call_soon(lambda: fired.append(1))
    eng.call_soon(lambda: fired.append(2))
    t1.cancel()
    assert t1.canceled
    eng.run()
    assert fired == [2]


def test_cancel_compaction_bounds_dead_entries():
    from repro.simtime.engine import _COMPACT_MIN

    eng = Engine()
    fired = []
    timers = [
        eng.call_later(1.0 + i * 1e-6, lambda i=i: fired.append(i))
        for i in range(500)
    ]
    for t in timers[:400]:
        t.cancel()
        # The compaction invariant: canceled entries never outnumber
        # live ones once there are enough of them to matter.
        assert (eng._ncanceled < _COMPACT_MIN
                or eng._ncanceled * 2 <= len(eng._queue))
    assert len(eng._queue) < 200        # corpses actually swept
    eng.run()
    assert fired == list(range(400, 500))
    assert eng._ncanceled == 0


def test_compaction_during_run_keeps_pending_events():
    """Cancels from inside callbacks may trigger compaction mid-run; the
    run loop's alias of the queue must survive it (in-place sweep)."""
    from repro.simtime.engine import _COMPACT_MIN

    eng = Engine()
    fired = []
    doomed = [eng.call_later(5.0 + i * 1e-6, lambda: fired.append("doomed"))
              for i in range(2 * _COMPACT_MIN)]

    def cancel_all():
        for t in doomed:
            t.cancel()

    eng.call_later(1.0, cancel_all)
    eng.call_later(2.0, lambda: fired.append("after"))
    eng.run()
    assert fired == ["after"]
    assert eng.now == 2.0


def test_run_until_fires_events_at_exactly_until():
    eng = Engine()
    fired = []
    eng.call_later(1.0, lambda: fired.append("at"))
    eng.call_later(1.0, lambda: eng.call_soon(lambda: fired.append("cascade")))
    eng.call_later(2.0, lambda: fired.append("later"))
    assert eng.run(until=1.0) == 1.0
    assert fired == ["at", "cascade"]
    assert eng.run() == 2.0
    assert fired == ["at", "cascade", "later"]


def test_run_until_in_past_is_noop():
    eng = Engine()
    fired = []
    eng.call_later(1.0, lambda: fired.append(1))
    eng.run(until=1.0)
    eng.call_soon(lambda: fired.append(2))
    assert eng.run(until=0.5) == 1.0    # horizon already passed: no-op
    assert fired == [1]
    eng.run()
    assert fired == [1, 2]


def test_reentrant_run_raises():
    eng = Engine()
    caught = []

    def reenter():
        try:
            eng.run()
        except SimulationError:
            caught.append(True)

    eng.call_soon(reenter)
    eng.run()
    assert caught == [True]
    # The engine stays usable after the rejected re-entry.
    eng.call_soon(lambda: caught.append("again"))
    eng.run()
    assert caught == [True, "again"]


@pytest.mark.parametrize("compat", [False, True])
def test_compat_flag_preserves_order(compat):
    eng = Engine(compat=compat)
    order = []
    eng.call_later(1.0, lambda: eng.call_soon(lambda: order.append("chained")))
    eng.call_later(1.0, lambda: order.append("peer"))
    eng.call_soon(lambda: order.append("t0"))
    eng.run()
    assert order == ["t0", "peer", "chained"]

"""Tracer unit tests + white-box protocol traces through the stack."""

from repro.api import SimSpec, make_world
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.simtime.trace import NullTracer, Tracer


class TestTracer:
    def test_emit_and_find(self):
        tr = Tracer()
        tr.emit(1.0, "pml", "send", dst="x")
        tr.emit(2.0, "pml", "recv")
        tr.emit(3.0, "cid", "alloc")
        assert tr.count("pml") == 2
        assert tr.count("pml", "send") == 1
        assert tr.count(event="alloc") == 1
        rec = next(tr.find("pml", "send"))
        assert rec.time == 1.0 and rec.detail == {"dst": "x"}

    def test_category_filter(self):
        tr = Tracer(categories={"cid"})
        tr.emit(1.0, "pml", "send")
        tr.emit(1.0, "cid", "alloc")
        assert tr.count() == 1

    def test_disable_and_clear(self):
        tr = Tracer()
        tr.enabled = False
        tr.emit(1.0, "x", "y")
        assert tr.count() == 0
        tr.enabled = True
        tr.emit(1.0, "x", "y")
        tr.clear()
        assert tr.count() == 0

    def test_null_tracer_drops(self):
        tr = NullTracer()
        tr.emit(1.0, "x", "y")
        assert tr.records == []

    def test_null_tracer_drops_even_when_reenabled(self):
        tr = NullTracer()
        tr.enabled = True
        tr.emit(1.0, "x", "y")
        assert tr.records == []

    def test_bare_string_category_filters_whole_word(self):
        """A bare string is one category, not an iterable of letters —
        otherwise ``Tracer(categories="pml")`` would filter per
        character, passing category "p" and dropping "pml" itself."""
        tr = Tracer(categories="pml")
        assert tr.categories == frozenset({"pml"})
        tr.emit(1.0, "pml", "send")
        tr.emit(1.0, "p", "oops")
        tr.emit(1.0, "m", "oops")
        tr.emit(1.0, "cid", "alloc")
        assert [r.category for r in tr.records] == ["pml"]

    def test_iterable_categories_normalized_to_frozenset(self):
        tr = Tracer(categories=["a", "b", "a"])
        assert tr.categories == frozenset({"a", "b"})
        tr.emit(0.0, "a", "x")
        tr.emit(0.0, "c", "y")
        assert tr.count() == 1

    def test_clear_preserves_filter(self):
        tr = Tracer(categories={"keep"})
        tr.emit(1.0, "keep", "x")
        tr.clear()
        assert tr.count() == 0
        tr.emit(2.0, "keep", "y")
        tr.emit(2.0, "drop", "z")
        assert [r.event for r in tr.records] == ["y"]

    def test_find_and_count_with_no_match(self):
        tr = Tracer()
        tr.emit(1.0, "pml", "send")
        assert list(tr.find("nope")) == []
        assert tr.count("nope") == 0
        assert tr.count("pml", "nope") == 0


class TestFaultTraces:
    def test_fault_events_land_in_faults_category(self):
        from repro.faults import FaultPlan
        from tests.faults.conftest import boot, run_bounded, spawn_ranks

        tracer = Tracer(categories="faults")
        cluster, job = boot(nodes=2, ranks=2, ppn=1, tracer=tracer)
        cluster.install_faults(FaultPlan().kill_proc(1, at_time=1e-4))

        def rank(r):
            from repro.simtime.process import Sleep

            client = job.client(r)
            yield from client.init()
            if r == 1:
                yield Sleep(1e9)  # hangs until the injected kill

        spawn_ranks(cluster, job, [rank(0), rank(1)])
        run_bounded(cluster)
        assert tracer.count("faults", "plan_installed") == 1
        assert tracer.count("faults", "kill_proc") == 1
        assert all(rec.category == "faults" for rec in tracer.records)


class TestProtocolTraces:
    def test_excid_handshake_trace(self):
        """The trace shows: extended sends, exactly one ACK, one switch."""
        tracer = Tracer(categories={"pml"})
        world = make_world(spec=SimSpec(
            nprocs=2, machine=laptop(num_nodes=1), ppn=2,
            config=MpiConfig.sessions_prototype(), tracer=tracer,
        ))

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "traced")
            for _ in range(4):
                if comm.rank == 0:
                    yield from comm.send(None, 1, tag=1, nbytes=8)
                    yield from comm.recv(1, tag=2)
                else:
                    yield from comm.recv(0, tag=1)
                    yield from comm.send(None, 0, tag=2, nbytes=8)
            comm.free()
            yield from session.finalize()

        procs = world.spawn_ranks(main)
        world.run()
        for p in procs:
            if p.exception:
                raise p.exception
        assert tracer.count("pml", "ext_send") == 1
        assert tracer.count("pml", "cid_ack") == 1
        assert tracer.count("pml", "cid_switch") == 1

    def test_baseline_has_no_handshake_traffic(self):
        tracer = Tracer(categories={"pml"})
        world = make_world(spec=SimSpec(
            nprocs=2, machine=laptop(num_nodes=1), ppn=2,
            config=MpiConfig.baseline(), tracer=tracer,
        ))

        def main(mpi):
            comm = yield from mpi.mpi_init()
            if comm.rank == 0:
                yield from comm.send(None, 1, tag=1, nbytes=8)
            else:
                yield from comm.recv(0, tag=1)
            yield from mpi.mpi_finalize()

        procs = world.spawn_ranks(main)
        world.run()
        for p in procs:
            if p.exception:
                raise p.exception
        assert tracer.count("pml") == 0

"""Unit tests for mailboxes, semaphores and simulation barriers."""

import pytest

from repro.simtime.engine import Engine
from repro.simtime.primitives import Mailbox, Semaphore, SimBarrier, SimEvent
from repro.simtime.process import SimProcess, Sleep


def start(eng, gen, name="p"):
    proc = SimProcess(eng, gen, name)
    proc.start()
    return proc


class TestSimEvent:
    def test_double_succeed_rejected(self):
        ev = SimEvent()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_fail_then_succeed_rejected(self):
        ev = SimEvent()
        ev.fail(ValueError("x"))
        with pytest.raises(RuntimeError):
            ev.succeed(1)

    def test_add_waiter_after_trigger_fires_immediately(self):
        ev = SimEvent()
        ev.succeed("v")
        seen = []
        ev.add_waiter(lambda value, exc: seen.append((value, exc)))
        assert seen == [("v", None)]

    def test_waiters_fire_in_order(self):
        ev = SimEvent()
        seen = []
        ev.add_waiter(lambda v, e: seen.append("first"))
        ev.add_waiter(lambda v, e: seen.append("second"))
        ev.succeed(None)
        assert seen == ["first", "second"]

    def test_discard_waiter(self):
        ev = SimEvent()
        seen = []
        cb = lambda v, e: seen.append("x")  # noqa: E731
        ev.add_waiter(cb)
        ev.discard_waiter(cb)
        ev.succeed(None)
        assert seen == []


class TestMailbox:
    def test_put_then_get(self):
        eng = Engine()
        mbox = Mailbox()
        mbox.put("a")
        mbox.put("b")

        def p():
            x = yield from mbox.get()
            y = yield from mbox.get()
            return [x, y]

        proc = start(eng, p())
        eng.run()
        assert proc.result == ["a", "b"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        mbox = Mailbox()

        def getter():
            item = yield from mbox.get()
            return item

        def putter():
            yield Sleep(2.0)
            mbox.put("late")

        g = start(eng, getter())
        start(eng, putter())
        eng.run()
        assert g.result == "late"
        assert eng.now == 2.0

    def test_fifo_across_waiters(self):
        eng = Engine()
        mbox = Mailbox()
        results = []

        def getter(tag):
            item = yield from mbox.get()
            results.append((tag, item))

        def putter():
            yield Sleep(1.0)
            mbox.put(1)
            mbox.put(2)

        start(eng, getter("a"))
        start(eng, getter("b"))
        start(eng, putter())
        eng.run()
        assert results == [("a", 1), ("b", 2)]

    def test_get_nowait_raises_when_empty(self):
        with pytest.raises(IndexError):
            Mailbox().get_nowait()

    def test_len(self):
        mbox = Mailbox()
        assert len(mbox) == 0
        mbox.put(1)
        assert len(mbox) == 1


class TestSemaphore:
    def test_initial_negative_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(-1)

    def test_mutual_exclusion_serializes(self):
        eng = Engine()
        sem = Semaphore(1)
        timeline = []

        def worker(tag):
            yield from sem.acquire()
            timeline.append((tag, "in", eng.now))
            yield Sleep(1.0)
            timeline.append((tag, "out", eng.now))
            sem.release()

        start(eng, worker("a"))
        start(eng, worker("b"))
        eng.run()
        assert timeline == [
            ("a", "in", 0.0),
            ("a", "out", 1.0),
            ("b", "in", 1.0),
            ("b", "out", 2.0),
        ]

    def test_capacity_two_allows_overlap(self):
        eng = Engine()
        sem = Semaphore(2)
        entered = []

        def worker(tag):
            yield from sem.acquire()
            entered.append((tag, eng.now))
            yield Sleep(1.0)
            sem.release()

        for t in "abc":
            start(eng, worker(t))
        eng.run()
        assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


class TestSimBarrier:
    def test_all_release_together(self):
        eng = Engine()
        bar = SimBarrier(3)
        released = []

        def worker(tag, delay):
            yield Sleep(delay)
            yield from bar.wait()
            released.append((tag, eng.now))

        start(eng, worker("a", 1.0))
        start(eng, worker("b", 2.0))
        start(eng, worker("c", 3.0))
        eng.run()
        assert [t for _, t in released] == [3.0, 3.0, 3.0]

    def test_reusable_generations(self):
        eng = Engine()
        bar = SimBarrier(2)
        gens = []

        def worker():
            g1 = yield from bar.wait()
            g2 = yield from bar.wait()
            gens.append((g1, g2))

        start(eng, worker())
        start(eng, worker())
        eng.run()
        assert gens == [(1, 2), (1, 2)]

    def test_single_party_never_blocks(self):
        eng = Engine()
        bar = SimBarrier(1)

        def worker():
            g = yield from bar.wait()
            return g

        proc = start(eng, worker())
        eng.run()
        assert proc.result == 1

    def test_zero_parties_rejected(self):
        with pytest.raises(ValueError):
            SimBarrier(0)

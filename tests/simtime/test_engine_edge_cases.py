"""Engine edge cases beyond the basics: re-entrance, until-mode, names."""

import pytest

from repro.simtime.engine import DeadlockError, Engine, SimulationError
from repro.simtime.primitives import SimEvent
from repro.simtime.process import SimProcess, Sleep, Wait


def test_reentrant_run_rejected():
    eng = Engine()
    seen = []

    def reenter():
        with pytest.raises(SimulationError):
            eng.run()
        seen.append("caught")

    eng.call_later(1.0, reenter)
    eng.run()
    assert seen == ["caught"]


def test_run_until_skips_deadlock_detection():
    """Bounded runs return quietly even with blocked processes (the
    stateful-file-model harness depends on this)."""
    eng = Engine()
    never = SimEvent()

    def stuck():
        yield Wait(never)

    proc = SimProcess(eng, stuck(), "stuck")
    proc.start()
    eng.run(until=5.0)          # no DeadlockError
    assert eng.now == 5.0
    assert eng.live_processes == 1
    never.succeed(None)
    eng.run()
    assert proc.finished


def test_detect_deadlock_flag_off():
    eng = Engine()
    never = SimEvent()

    def stuck():
        yield Wait(never)

    SimProcess(eng, stuck(), "s").start()
    eng.run(detect_deadlock=False)  # drains quietly


def test_deadlock_error_names_processes():
    eng = Engine()
    never = SimEvent()

    def stuck():
        yield Wait(never)

    for name in ("alpha", "beta"):
        SimProcess(eng, stuck(), name).start()
    with pytest.raises(DeadlockError) as err:
        eng.run()
    msg = str(err.value)
    assert "alpha" in msg and "beta" in msg


def test_deadlock_error_truncates_long_name_lists():
    eng = Engine()
    never = SimEvent()

    def stuck():
        yield Wait(never)

    for i in range(15):
        SimProcess(eng, stuck(), f"r{i:02d}").start()
    with pytest.raises(DeadlockError) as err:
        eng.run()
    msg = str(err.value)
    assert "15 process(es)" in msg
    assert "…" in msg


def test_run_resumes_after_until():
    eng = Engine()
    seen = []

    def worker():
        yield Sleep(1.0)
        seen.append("a")
        yield Sleep(9.0)
        seen.append("b")

    SimProcess(eng, worker(), "w").start()
    eng.run(until=2.0)
    assert seen == ["a"]
    eng.run()
    assert seen == ["a", "b"]
    assert eng.now == 10.0


def test_zero_duration_simulation():
    eng = Engine()

    def instant():
        return "done"
        yield  # pragma: no cover

    proc = SimProcess(eng, instant(), "i")
    proc.start()
    eng.run()
    assert proc.result == "done"
    assert eng.now == 0.0

"""Every example script must run clean end-to-end (they self-assert)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "ensemble_forecast", "dask_style_tasks",
            "client_server_isolation", "multi_physics",
            "checkpoint_restart"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script.stem} failed:\n{proc.stdout}\n{proc.stderr}"
    assert "OK" in proc.stdout

"""The developer tools: figure runner and experiments-report generator."""

import json
import subprocess
import sys

import pytest


class TestRunFigure:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/run_figure.py", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_list(self):
        proc = self.run("--list")
        assert proc.returncode == 0
        for name in ("fig3a", "fig4", "fig7", "ablation_dup_policy"):
            assert name in proc.stdout

    def test_runs_a_figure(self):
        proc = self.run("fig6b")
        assert proc.returncode == 0
        assert "natural-order ring latency" in proc.stdout
        assert "MPI_Init" in proc.stdout and "Sessions" in proc.stdout

    def test_unknown_figure_exits_2(self):
        proc = self.run("fig99")
        assert proc.returncode == 2
        assert "unknown figure" in proc.stderr

    def test_no_args_lists(self):
        assert self.run().returncode == 0

    def test_multiple_figures_with_jobs_and_cache(self, tmp_path):
        proc = self.run("table1", "fig6b", "--jobs", "2",
                        "--cache-dir", str(tmp_path))
        assert proc.returncode == 0
        assert "== table1" in proc.stdout and "== fig6b" in proc.stdout
        assert "2 miss(es)" in proc.stderr
        again = self.run("table1", "fig6b", "--cache-dir", str(tmp_path))
        assert again.returncode == 0
        assert "2 hit(s)" in again.stderr
        # A cache hit renders the same tables as the fresh run (modulo
        # the wall-clock footer).
        strip = lambda s: s[:s.rfind("\n(")]
        assert strip(again.stdout) == strip(proc.stdout)

    def test_csv_requires_single_figure(self):
        proc = self.run("table1", "fig6b", "--csv", "out.csv")
        assert proc.returncode == 2
        assert "exactly one figure" in proc.stderr


class TestRunRecovery:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/run_recovery.py", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_jobs_output_identical_to_serial(self):
        serial = self.run("--seeds", "3", "--json")
        fanned = self.run("--seeds", "3", "--jobs", "2", "--json")
        assert serial.returncode == 0 and fanned.returncode == 0
        assert serial.stdout == fanned.stdout     # records AND digests
        digests = [json.loads(line)["digest"]
                   for line in serial.stdout.splitlines()]
        assert len(digests) == 3 and len(set(digests)) == 3

    def test_cache_hits_on_rerun(self, tmp_path):
        first = self.run("--seeds", "2", "--json", "--cache-dir", str(tmp_path))
        again = self.run("--seeds", "2", "--json", "--cache-dir", str(tmp_path))
        assert first.returncode == 0 and again.returncode == 0
        assert "2 miss(es)" in first.stderr
        assert "2 hit(s)" in again.stderr
        assert first.stdout == again.stdout


class TestBench:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/bench.py", "--quick", "--repeats", "1",
             "--cases", "comm-dup", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_quick_bench_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_TEST.json"
        proc = self.run("--out", str(out))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        rec = report["cases"]["comm-dup"]
        assert rec["events"] > 0
        assert rec["fast_eps"] > 0 and rec["compat_eps"] > 0

    def test_check_gate_and_ledger(self, tmp_path):
        """--check gates a rerun against its own baseline; --ledger
        leaves a queryable bench row behind."""
        out = tmp_path / "BASE.json"
        ledger = tmp_path / "ledger.sqlite"
        first = self.run("--out", str(out), "--ledger", str(ledger))
        assert first.returncode == 0, first.stderr
        assert "recorded 1 case(s)" in first.stdout

        again = self.run("--out", str(tmp_path / "AGAIN.json"),
                         "--check", str(out), "--tolerance", "5.0")
        assert again.returncode == 0, again.stderr

        report = subprocess.run(
            [sys.executable, "tools/obs_report.py", "--runs", str(ledger)],
            capture_output=True, text=True, timeout=120, cwd=".",
        )
        assert report.returncode == 0, report.stderr
        assert "bench" in report.stdout and "comm-dup" in report.stdout

    def test_runs_mode_missing_ledger_exits_2(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "tools/obs_report.py", "--runs",
             str(tmp_path / "nope.sqlite")],
            capture_output=True, text=True, timeout=120, cwd=".",
        )
        assert proc.returncode == 2
        assert "no ledger" in proc.stderr


@pytest.mark.serve
class TestServeCLI:
    def run(self, *args, timeout=600):
        return subprocess.run(
            [sys.executable, "tools/serve.py", *args],
            capture_output=True, text=True, timeout=timeout, cwd=".",
        )

    def test_loadgen_writes_bench_report(self, tmp_path):
        out = tmp_path / "BENCH_SERVE.json"
        proc = self.run("loadgen", "--clients", "2", "--requests", "8",
                        "--jobs", "2", "--nprocs", "2", "--seed", "0",
                        "--cache-dir", str(tmp_path / "cache"),
                        "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "req/s" in proc.stdout and "backpressure" in proc.stdout
        report = json.loads(out.read_text())
        assert report["bench"] == "serve-loadgen"
        lg = report["loadgen"]
        assert lg["by_status"] == {"ok": 8}
        assert lg["throughput_rps"] > 0
        assert {"p50", "p99"} <= set(lg["latency_s"])
        assert report["backpressure"]["bounded"]
        assert report["backpressure"]["rejections_observed"]
        assert report["determinism"]["serve_matches_serial_sweep"]

    def test_start_submit_shutdown_round_trip(self):
        server = subprocess.Popen(
            [sys.executable, "tools/serve.py", "start", "--port", "0",
             "--jobs", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, cwd=".",
        )
        try:
            banner = server.stderr.readline()       # "serving on host:port ..."
            assert "serving on" in banner, banner
            port = banner.split()[2].rsplit(":", 1)[1]
            submit = self.run("submit", "sleep", "--param", "seconds=0.01",
                              "--port", port, "--json")
            assert submit.returncode == 0, submit.stderr
            assert json.loads(submit.stdout)["status"] == "ok"
            down = self.run("shutdown", "--port", port)
            assert down.returncode == 0
            assert server.wait(timeout=30) == 0     # start exits after the op
        finally:
            if server.poll() is None:
                server.kill()
            server.wait()

    def test_telemetry_stats_json_and_metrics(self, tmp_path):
        """A --telemetry server: stats/health round-trip through --json,
        metrics prints Prometheus text, and the telemetry directory ends
        up holding the event log, the ledger, and the wall trace."""
        tel_dir = tmp_path / "tel"
        server = subprocess.Popen(
            [sys.executable, "tools/serve.py", "start", "--port", "0",
             "--jobs", "1", "--telemetry", str(tel_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, cwd=".",
        )
        try:
            banner = server.stderr.readline()
            assert "serving on" in banner, banner
            port = banner.split()[2].rsplit(":", 1)[1]
            assert "telemetry" in server.stderr.readline()

            submit = self.run("submit", "sleep", "--param", "seconds=0.01",
                              "--port", port, "--json")
            assert submit.returncode == 0, submit.stderr
            assert json.loads(submit.stdout)["status"] == "ok"

            stats = self.run("stats", "--port", port, "--json")
            assert stats.returncode == 0, stats.stderr
            payload = json.loads(stats.stdout)        # --json is valid JSON
            assert payload["status"] == "ok"
            assert payload["stats"]["submitted"] == 1
            assert payload["stats"]["ok"] == 1

            human = self.run("stats", "--port", port)
            assert human.returncode == 0
            assert "submitted: 1" in human.stdout
            assert not human.stdout.lstrip().startswith("{")

            health = self.run("health", "--port", port, "--json")
            assert health.returncode == 0
            hp = json.loads(health.stdout)
            assert hp["status"] == "ok" and hp["workers"] >= 1

            metrics = self.run("metrics", "--port", port)
            assert metrics.returncode == 0, metrics.stderr
            assert "# TYPE serve_requests counter" in metrics.stdout

            down = self.run("shutdown", "--port", port)
            assert down.returncode == 0
            assert server.wait(timeout=30) == 0
        finally:
            if server.poll() is None:
                server.kill()
            server.wait()

        assert (tel_dir / "events.jsonl").exists()
        assert (tel_dir / "ledger.sqlite").exists()
        assert (tel_dir / "serve-trace.json").exists()
        runs = subprocess.run(
            [sys.executable, "tools/obs_report.py", "--runs",
             str(tel_dir / "ledger.sqlite")],
            capture_output=True, text=True, timeout=120, cwd=".",
        )
        assert runs.returncode == 0, runs.stderr
        assert "serve" in runs.stdout and "sleep" in runs.stdout

    def test_submit_unreachable_server_fails_cleanly(self):
        proc = self.run("submit", "sleep", "--port", "1")    # nothing there
        assert proc.returncode == 1
        assert "cannot reach server" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_all_client_commands_fail_cleanly_when_server_down(self):
        for cmd in (["stats"], ["health"], ["metrics"], ["drain"],
                    ["shutdown"], ["resize", "2"]):
            proc = self.run(*cmd, "--port", "1")
            assert proc.returncode == 1, (cmd, proc.stderr)
            assert "cannot reach server" in proc.stderr, cmd
            assert "Traceback" not in proc.stderr, cmd


class TestRunChaos:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/run_chaos.py", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_verify_determinism_smoke(self):
        proc = self.run("--seeds", "2", "--verify-determinism",
                        "--skip-degraded", "--json")
        assert proc.returncode == 0, proc.stderr
        records = [json.loads(line) for line in proc.stdout.splitlines()]
        assert [r["seed"] for r in records] == [0, 1]
        assert all(r["ok"] for r in records)
        for r in records:
            assert r["serve"]["clean_digest"] == r["serve"]["chaos_digest"]
            assert r["sweep"]["clean_digest"] == r["sweep"]["chaos_digest"]
        assert "2/2 seeds byte-identical" in proc.stderr
        assert "NON-DETERMINISTIC" not in proc.stderr

    def test_degraded_scenario_reported(self):
        proc = self.run("--seed", "1", "--requests", "2", "--points", "4")
        assert proc.returncode == 0, proc.stderr
        assert "degraded-mode scenario: ok" in proc.stderr


class TestExperimentsReport:
    def test_catalog_covers_every_paper_figure(self):
        """The generator must regenerate every table and figure."""
        from tools.make_experiments_report import EXPERIMENTS

        names = {name for name, *_ in EXPERIMENTS}
        required = {"table1", "fig3a", "fig3b", "fig4", "fig5a", "fig5b",
                    "fig5c", "fig6a", "fig6b", "fig7"}
        assert required <= names

    def test_catalog_entries_resolve(self):
        from repro.bench import figures
        from tools.make_experiments_report import EXPERIMENTS

        for name, _kwargs, claim, judge in EXPERIMENTS:
            assert callable(getattr(figures, name)), name
            assert claim
            assert callable(judge)


def test_tools_importable_as_modules():
    import tools.make_experiments_report
    import tools.run_figure

    assert callable(tools.run_figure.main)
    assert callable(tools.make_experiments_report.main)

"""The developer tools: figure runner and experiments-report generator."""

import subprocess
import sys

import pytest


class TestRunFigure:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/run_figure.py", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_list(self):
        proc = self.run("--list")
        assert proc.returncode == 0
        for name in ("fig3a", "fig4", "fig7", "ablation_dup_policy"):
            assert name in proc.stdout

    def test_runs_a_figure(self):
        proc = self.run("fig6b")
        assert proc.returncode == 0
        assert "natural-order ring latency" in proc.stdout
        assert "MPI_Init" in proc.stdout and "Sessions" in proc.stdout

    def test_unknown_figure_exits_2(self):
        proc = self.run("fig99")
        assert proc.returncode == 2
        assert "unknown figure" in proc.stderr

    def test_no_args_lists(self):
        assert self.run().returncode == 0


class TestExperimentsReport:
    def test_catalog_covers_every_paper_figure(self):
        """The generator must regenerate every table and figure."""
        from tools.make_experiments_report import EXPERIMENTS

        names = {name for name, *_ in EXPERIMENTS}
        required = {"table1", "fig3a", "fig3b", "fig4", "fig5a", "fig5b",
                    "fig5c", "fig6a", "fig6b", "fig7"}
        assert required <= names

    def test_catalog_entries_resolve(self):
        from repro.bench import figures
        from tools.make_experiments_report import EXPERIMENTS

        for name, _kwargs, claim, judge in EXPERIMENTS:
            assert callable(getattr(figures, name)), name
            assert claim
            assert callable(judge)


def test_tools_importable_as_modules():
    import tools.make_experiments_report
    import tools.run_figure

    assert callable(tools.run_figure.main)
    assert callable(tools.make_experiments_report.main)

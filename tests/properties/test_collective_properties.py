"""Property-based tests: collective results vs numpy references, over
random communicator sizes, roots, and contributions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import MAX, MIN, SUM

sizes = st.integers(min_value=1, max_value=7)
values = st.lists(st.integers(min_value=-1000, max_value=1000), min_size=7, max_size=7)


def run_world(n, body):
    def main(mpi):
        comm = yield from mpi.mpi_init()
        result = yield from body(mpi, comm)
        yield from mpi.mpi_finalize()
        return result

    return run_mpi(SimSpec(nprocs=n, machine=laptop(num_nodes=2),
                           ppn=(n + 1) // 2, config=MpiConfig.baseline()), main)


@given(sizes, values)
@settings(max_examples=25, deadline=None)
def test_allreduce_sum_matches_numpy(n, vals):
    def body(mpi, comm):
        return (yield from comm.allreduce(vals[comm.rank], op=SUM))

    assert set(run_world(n, body)) == {int(np.sum(vals[:n]))}


@given(sizes, values)
@settings(max_examples=25, deadline=None)
def test_allreduce_minmax_matches_numpy(n, vals):
    def body(mpi, comm):
        mx = yield from comm.allreduce(vals[comm.rank], op=MAX)
        mn = yield from comm.allreduce(vals[comm.rank], op=MIN)
        return (mx, mn)

    assert set(run_world(n, body)) == {(max(vals[:n]), min(vals[:n]))}


@given(sizes, values, st.data())
@settings(max_examples=25, deadline=None)
def test_reduce_any_root(n, vals, data):
    root = data.draw(st.integers(min_value=0, max_value=n - 1))

    def body(mpi, comm):
        return (yield from comm.reduce(vals[comm.rank], op=SUM, root=root))

    results = run_world(n, body)
    assert results[root] == sum(vals[:n])
    assert all(r is None for i, r in enumerate(results) if i != root)


@given(sizes, st.data())
@settings(max_examples=25, deadline=None)
def test_bcast_any_root(n, data):
    root = data.draw(st.integers(min_value=0, max_value=n - 1))

    def body(mpi, comm):
        obj = ("payload", root) if comm.rank == root else None
        return (yield from comm.bcast(obj, root=root))

    assert set(run_world(n, body)) == {("payload", root)}


@given(sizes, values)
@settings(max_examples=25, deadline=None)
def test_scan_prefix_property(n, vals):
    def body(mpi, comm):
        return (yield from comm.scan(vals[comm.rank], op=SUM))

    results = run_world(n, body)
    assert results == list(np.cumsum(vals[:n]))


@given(sizes)
@settings(max_examples=25, deadline=None)
def test_allgather_order(n):
    def body(mpi, comm):
        return (yield from comm.allgather(("r", comm.rank)))

    results = run_world(n, body)
    expected = [("r", i) for i in range(n)]
    assert all(r == expected for r in results)

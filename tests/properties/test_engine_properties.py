"""Property-based tests of the simulation engine's ordering contract."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime.engine import Engine
from repro.simtime.primitives import SimBarrier, SimEvent
from repro.simtime.process import Join, SimProcess, Sleep, Spawn

delays = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=40
)


@given(delays)
@settings(max_examples=150)
def test_events_fire_in_nondecreasing_time_order(ds):
    eng = Engine()
    fired = []
    for d in ds:
        eng.call_later(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
@settings(max_examples=100)
def test_equal_times_fifo(ds):
    """Among events scheduled for the same instant, registration order wins."""
    eng = Engine()
    order = []
    for i, d in enumerate(ds):
        quantized = round(d)  # force collisions
        eng.call_later(quantized, lambda i=i, q=quantized: order.append((q, i)))
    eng.run()
    # Within each time bucket, indices appear in registration order.
    from collections import defaultdict

    buckets = defaultdict(list)
    for q, i in order:
        buckets[q].append(i)
    for seq in buckets.values():
        assert seq == sorted(seq)


@given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=15))
@settings(max_examples=100, deadline=None)
def test_fork_join_time_is_max_of_children(ds):
    eng = Engine()

    def child(d):
        yield Sleep(d)
        return d

    def parent():
        kids = []
        for d in ds:
            kids.append((yield Spawn(child(d))))
        out = []
        for k in kids:
            out.append((yield Join(k)))
        return out

    proc = SimProcess(eng, parent(), "parent")
    proc.start()
    eng.run()
    assert eng.now == max(ds)
    assert proc.result == ds


@given(st.integers(min_value=1, max_value=12),
       st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=12, max_size=12))
@settings(max_examples=75, deadline=None)
def test_barrier_releases_at_last_arrival(parties, ds):
    eng = Engine()
    bar = SimBarrier(parties)
    releases = []

    def worker(d):
        yield Sleep(d)
        yield from bar.wait()
        releases.append(eng.now)

    used = ds[:parties]
    for d in used:
        SimProcess(eng, worker(d), "w").start()
    eng.run()
    assert len(releases) == parties
    assert all(r == max(used) for r in releases)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=50)
def test_event_wakes_all_waiters_exactly_once(n):
    ev = SimEvent()
    woken = []
    for i in range(n):
        ev.add_waiter(lambda v, e, i=i: woken.append(i))
    ev.succeed("x")
    assert woken == list(range(n))

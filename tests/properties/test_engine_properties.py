"""Property-based tests of the simulation engine's ordering contract."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simtime.engine import Engine
from repro.simtime.primitives import SimBarrier, SimEvent
from repro.simtime.process import Join, SimProcess, Sleep, Spawn

delays = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=40
)


@given(delays)
@settings(max_examples=150)
def test_events_fire_in_nondecreasing_time_order(ds):
    eng = Engine()
    fired = []
    for d in ds:
        eng.call_later(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)


@given(delays)
@settings(max_examples=100)
def test_equal_times_fifo(ds):
    """Among events scheduled for the same instant, registration order wins."""
    eng = Engine()
    order = []
    for i, d in enumerate(ds):
        quantized = round(d)  # force collisions
        eng.call_later(quantized, lambda i=i, q=quantized: order.append((q, i)))
    eng.run()
    # Within each time bucket, indices appear in registration order.
    from collections import defaultdict

    buckets = defaultdict(list)
    for q, i in order:
        buckets[q].append(i)
    for seq in buckets.values():
        assert seq == sorted(seq)


@given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=15))
@settings(max_examples=100, deadline=None)
def test_fork_join_time_is_max_of_children(ds):
    eng = Engine()

    def child(d):
        yield Sleep(d)
        return d

    def parent():
        kids = []
        for d in ds:
            kids.append((yield Spawn(child(d))))
        out = []
        for k in kids:
            out.append((yield Join(k)))
        return out

    proc = SimProcess(eng, parent(), "parent")
    proc.start()
    eng.run()
    assert eng.now == max(ds)
    assert proc.result == ds


@given(st.integers(min_value=1, max_value=12),
       st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=12, max_size=12))
@settings(max_examples=75, deadline=None)
def test_barrier_releases_at_last_arrival(parties, ds):
    eng = Engine()
    bar = SimBarrier(parties)
    releases = []

    def worker(d):
        yield Sleep(d)
        yield from bar.wait()
        releases.append(eng.now)

    used = ds[:parties]
    for d in used:
        SimProcess(eng, worker(d), "w").start()
    eng.run()
    assert len(releases) == parties
    assert all(r == max(used) for r in releases)


@given(st.integers(min_value=0, max_value=50))
@settings(max_examples=50)
def test_event_wakes_all_waiters_exactly_once(n):
    ev = SimEvent()
    woken = []
    for i in range(n):
        ev.add_waiter(lambda v, e, i=i: woken.append(i))
    ev.succeed("x")
    assert woken == list(range(n))


# -- fast path vs compat reference: full firing-order equality -------------
_ops = st.lists(
    st.tuples(
        st.sampled_from(["later", "soon", "cancel"]),
        st.integers(min_value=0, max_value=20),    # tenths of a second
        st.integers(min_value=0, max_value=3),     # nested call_soon fan-out
    ),
    min_size=1,
    max_size=25,
)


def _run_schedule_program(compat, ops):
    """Replay a generated schedule program; returns the (time, id) log."""
    eng = Engine(compat=compat)
    log = []

    def make_cb(i, nested):
        def cb():
            log.append((eng.now, i))
            for j in range(nested):
                eng.call_soon(lambda i=i, j=j: log.append((eng.now, (i, j))))
        return cb

    cancelable = []
    for i, (kind, tenths, nested) in enumerate(ops):
        if kind == "soon":
            eng.call_soon(make_cb(i, nested))
        else:
            timer = eng.call_later(tenths / 10.0, make_cb(i, nested))
            if kind == "cancel":
                cancelable.append(timer)
    for timer in cancelable[::2]:
        timer.cancel()
    eng.run()
    return log, eng.events_executed


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_fast_lane_matches_pure_heap_scheduler(ops):
    """The ready-lane scheduler and the compat pure-heap reference must
    produce identical global firing orders — the determinism contract
    behind the golden-trace tests, here under generated schedules mixing
    same-instant chains, duplicate timestamps and cancellations."""
    assert _run_schedule_program(False, ops) == _run_schedule_program(True, ops)


_prog = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["sleep", "zero", "timeout", "ready"]),
            st.integers(min_value=0, max_value=10),
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=6,
)


def _run_proc_program(compat, prog):
    """Trampoline both interpreters over generated effect sequences."""
    from repro.simtime.process import SLEEP0, SimTimeout, Wait

    eng = Engine(compat=compat)
    log = []

    def worker(r, acts):
        for kind, val in acts:
            if kind == "sleep":
                yield Sleep(val / 1000.0)
            elif kind == "zero":
                yield SLEEP0
            elif kind == "timeout":
                try:
                    yield Wait(SimEvent(), timeout=(val + 1) / 1000.0)
                except SimTimeout:
                    pass
            else:  # wait on an already-triggered event (fast-lane resume)
                ev = SimEvent()
                ev.succeed(val)
                got = yield Wait(ev)
                assert got == val
            log.append((eng.now, r, kind))

    for r, acts in enumerate(prog):
        SimProcess(eng, worker(r, acts), f"w{r}").start()
    eng.run()
    return log, eng.events_executed


@given(_prog)
@settings(max_examples=100, deadline=None)
def test_trampoline_fast_path_matches_reference(prog):
    """Sleep/zero-sleep/timed-wait/triggered-wait interleavings resume in
    the same global order (and execute the same engine events) under the
    fast trampoline and the reference isinstance-chain interpreter."""
    assert _run_proc_program(False, prog) == _run_proc_program(True, prog)


@given(delays, st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
@settings(max_examples=100)
def test_run_until_boundary(ds, until):
    """run(until) fires everything <= until (inclusive), never moves the
    clock backwards, and a later run() completes the schedule."""
    eng = Engine()
    fired = []
    for d in ds:
        eng.call_later(d, lambda d=d: fired.append(d))
    eng.run(until=until)
    assert fired == sorted(d for d in ds if d <= until)
    assert eng.now == max([until] + fired)
    before = eng.now
    assert eng.run(until=0.0) == before      # past horizon: no-op
    eng.run()
    assert sorted(fired) == sorted(ds)

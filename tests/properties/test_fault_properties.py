"""Properties of seeded-random fault plans (docs/faults.md).

For *any* seed, a chaos run must satisfy the fault-injection contract:

* bounded termination — the simulation quiesces, no hang;
* every rank ends in a classifiable state: ok, typed error, or killed;
* the surviving process-set membership is exactly (all ranks − the
  dead), i.e. pset state and liveness state never disagree;
* the whole run is bit-deterministic: same seed, same plan, same
  outcomes, same trace — byte for byte.
"""

import pytest

from repro.cluster import Cluster
from repro.faults import random_plan
from repro.machine.presets import laptop
from repro.pmix.types import PmixError
from repro.simtime.process import ProcessKilled, Sleep
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.faults

RANKS = 8
NODES = 4
SIM_BOUND = 2.0


def run_chaos(seed: int, trace: bool = False):
    """One seeded chaos run: 8 ranks / 4 nodes, three fences each,
    random faults from ``random_plan(seed)``.  Returns (outcomes,
    dead_rank_set, surviving pset members, trace reprs, final time)."""
    tracer = Tracer(categories={"faults"}) if trace else None
    cluster = Cluster(machine=laptop(num_nodes=NODES), tracer=tracer)
    job = cluster.launch(RANKS, ppn=RANKS // NODES)
    cluster.psets.define("chaos/all", [job.proc(r) for r in range(RANKS)])
    cluster.install_faults(random_plan(seed, num_ranks=RANKS, num_nodes=NODES))
    outcomes = {}

    def rank_proc(rank):
        client = job.client(rank)
        yield from client.init()
        done = 0
        try:
            for _ in range(3):
                yield from client.fence()
                done += 1
                yield Sleep(2e-4)
            outcomes[rank] = ("ok", done)
        except PmixError as err:
            outcomes[rank] = ("err", err.status, done)

    procs = []
    for rank in range(RANKS):
        sim = cluster.spawn(rank_proc(rank), name=f"rank{rank}")
        cluster.faults.register_rank_proc(job.proc(rank), sim)
        procs.append(sim)
    for p in procs:
        p.defuse()
    cluster.run()
    for rank, sim in enumerate(procs):
        if isinstance(sim.exception, ProcessKilled):
            outcomes[rank] = ("killed",)
    dead_ranks = {p.rank for p in cluster.faults.dead_procs}
    members = cluster.psets.members("chaos/all")
    records = [repr(r) for r in tracer.records] if tracer else []
    return outcomes, dead_ranks, members, records, cluster.now


@pytest.mark.parametrize("seed", range(8))
def test_chaos_run_satisfies_contract(seed):
    outcomes, dead_ranks, members, _records, now = run_chaos(seed)
    # Bounded termination, whatever the plan did.
    assert now < SIM_BOUND, f"seed {seed} overran the bound: t={now}"
    # Every rank is accounted for with a classifiable outcome.
    assert set(outcomes) == set(range(RANKS))
    for rank, out in outcomes.items():
        assert out[0] in ("ok", "err", "killed"), (seed, rank, out)
        # "killed" implies registered dead; the converse need not hold —
        # a timed kill may land after the rank already ran to completion.
        if out[0] == "killed":
            assert rank in dead_ranks, (seed, rank, out)
    # Rank 0 is protected by construction.
    assert 0 not in dead_ranks
    # Pset membership agrees with liveness exactly: the survivors and
    # nothing else.
    member_ranks = {p.rank for p in members}
    assert member_ranks == set(range(RANKS)) - dead_ranks, (seed, member_ranks)


@pytest.mark.parametrize("seed", [3, 11])
def test_chaos_run_is_bit_deterministic(seed):
    a = run_chaos(seed, trace=True)
    b = run_chaos(seed, trace=True)
    out_a, dead_a, members_a, records_a, now_a = a
    out_b, dead_b, members_b, records_b, now_b = b
    assert out_a == out_b
    assert dead_a == dead_b
    assert members_a == members_b
    assert now_a == now_b
    # Byte-identical fault traces, timestamps included.
    assert records_a == records_b


def test_different_seeds_differ_somewhere():
    """Not a hard guarantee seed-by-seed, but across a handful of seeds
    the plans must not all collapse to identical behaviour."""
    runs = [run_chaos(seed, trace=True)[3] for seed in range(4)]
    assert len({tuple(r) for r in runs}) > 1

"""Property test: RMA epochs against a numpy reference model.

Random sequences of put/accumulate across ranks; after every fence the
window memory on each rank must equal the model applied in the same
per-origin order (MPI leaves conflicting-origin order undefined, so the
generated sequences never write overlapping ranges from two origins in
one epoch)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.ompi.win import Window

WIN = 8
NRANKS = 3

# One epoch = a list of ops; op = (origin, kind, target, offset, value).
# Offsets are partitioned by origin (origin o may write [o*2, o*2+2))
# so concurrent writes never conflict.
ops = st.tuples(
    st.integers(0, NRANKS - 1),           # origin
    st.sampled_from(["put", "acc"]),
    st.integers(0, NRANKS - 1),           # target
    st.integers(0, 1),                    # slot within the origin's range
    st.integers(-5, 5),                   # value
)
epochs = st.lists(st.lists(ops, max_size=6), min_size=1, max_size=4)


@given(epochs)
@settings(max_examples=25, deadline=None)
def test_window_matches_numpy_model(script):
    def main(mpi):
        comm = yield from mpi.mpi_init()
        win = yield from Window.allocate(comm, WIN)
        yield from win.fence()
        snapshots = []
        for epoch in script:
            for origin, kind, target, slot, value in epoch:
                if origin != comm.rank:
                    continue
                offset = origin * 2 + slot
                data = np.array([float(value)])
                if kind == "put":
                    yield from win.put(data, target, offset)
                else:
                    yield from win.accumulate(data, target, SUM, offset)
            yield from win.fence()
            snapshots.append(win.memory.copy())
        yield from comm.barrier()
        win.free()
        yield from mpi.mpi_finalize()
        return [s.tolist() for s in snapshots]

    results = run_mpi(SimSpec(nprocs=NRANKS, machine=laptop(num_nodes=1),
                              ppn=NRANKS, config=MpiConfig.baseline()), main)

    # Reference model.
    model = [np.zeros(WIN) for _ in range(NRANKS)]
    expected_snapshots = []
    for epoch in script:
        for origin, kind, target, slot, value in epoch:
            offset = origin * 2 + slot
            if kind == "put":
                model[target][offset] = value
            else:
                model[target][offset] += value
        expected_snapshots.append([m.copy() for m in model])

    for rank in range(NRANKS):
        for i, _epoch in enumerate(script):
            assert results[rank][i] == expected_snapshots[i][rank].tolist(), (
                rank, i, script
            )

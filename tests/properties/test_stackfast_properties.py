"""Property tests for the PR-6 stack fast paths.

Three surfaces the optimized protocol code rewired, each checked
against either an algebraic model or the ``Engine(compat=True)``
reference:

* ob1 packed match headers — pack/unpack round-trip over the full field
  ranges, dataclass equivalence, and wire-size invariance;
* RML/grpcomm fan-out — random same-instant send bursts deliver in
  identical order, at identical times, on both engines, and never
  overtake within a (src, dst) pair;
* PMIx KVS put/commit/fence/get bookkeeping — random put sets agree
  with a dict model after the fence, identically on both engines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.machine.presets import laptop
from repro.ompi.pml.headers import (
    EXTENDED_HEADER_BYTES,
    MATCH_HEADER_BYTES,
    ExtendedHeader,
    MatchHeader,
    header_from_packed,
    pack_from_header,
    pack_match,
    unpack_match,
)
from repro.ompi.pml.ob1 import Packet
from repro.pmix.types import PMIX_ERR_NOT_FOUND, PmixError
from tests.conftest import run_procs

pytestmark = pytest.mark.stackparity


# ---------------------------------------------------------------------------
# ob1 packed headers
# ---------------------------------------------------------------------------
# Full field ranges the wire format promises: 16-bit ctx, 24-bit src,
# signed 33-bit tag window (covers negative internal collective tags),
# unbounded seq in the top bits.
ctxs = st.integers(0, 2**16 - 1)
srcs = st.integers(0, 2**24 - 1)
tags = st.integers(-(2**32), 2**32 - 1)
seqs = st.integers(0, 2**48)


@given(ctx=ctxs, src=srcs, tag=tags, seq=seqs)
@settings(max_examples=200, deadline=None)
def test_pack_unpack_roundtrip(ctx, src, tag, seq):
    assert unpack_match(pack_match(ctx, src, tag, seq)) == (ctx, src, tag, seq)


@given(ctx=ctxs, src=srcs, tag=tags, seq=seqs)
@settings(max_examples=100, deadline=None)
def test_packed_matches_dataclass_header(ctx, src, tag, seq):
    hdr = MatchHeader(ctx=ctx, src=src, tag=tag, seq=seq)
    assert header_from_packed(pack_from_header(hdr)) == hdr


@given(ctx=ctxs, src=srcs, tag=tags, seq=seqs)
@settings(max_examples=50, deadline=None)
def test_packed_word_is_unique_per_header(ctx, src, tag, seq):
    # Distinct fields can never collide: the packing is a bijection on
    # its domain, so a perturbed header packs to a different word.
    word = pack_match(ctx, src, tag, seq)
    assert pack_match(ctx, src, tag, seq + 1) != word
    assert pack_match(ctx, src, (tag + 1 if tag < 2**32 - 1 else tag - 1), seq) != word


@given(ctx=ctxs, src=srcs, tag=tags, seq=seqs,
       nbytes=st.integers(0, 1 << 20),
       extended=st.booleans(), eager=st.booleans())
@settings(max_examples=100, deadline=None)
def test_wire_size_invariant_under_header_form(ctx, src, tag, seq, nbytes,
                                               extended, eager):
    """A packet costs the same wire bytes whether it carries the compat
    dataclass headers or the fast packed forms."""
    hdr_obj = MatchHeader(ctx=ctx, src=src, tag=tag, seq=seq)
    hdr_word = pack_match(ctx, src, tag, seq)
    ext_obj = ExtendedHeader(excid=("job", 1, 7), sender_cid=3) if extended else None
    ext_tup = (("job", 1, 7), 3) if extended else None
    protocol = "eager" if eager else "rendezvous"
    compat_pkt = Packet(kind="user", src_proc=None, hdr=hdr_obj, ext=ext_obj,
                        nbytes=nbytes, protocol=protocol)
    fast_pkt = Packet(kind="user", src_proc=None, hdr=hdr_word, ext=ext_tup,
                      nbytes=nbytes, protocol=protocol)
    assert compat_pkt.wire_bytes() == fast_pkt.wire_bytes()
    expected = MATCH_HEADER_BYTES
    if extended:
        expected += EXTENDED_HEADER_BYTES
    if eager:
        expected += nbytes
    assert fast_pkt.wire_bytes() == expected


# ---------------------------------------------------------------------------
# RML / grpcomm fan-out delivery order
# ---------------------------------------------------------------------------
NODES = 4

# A burst: every send is issued at t=0 (the same-instant fan-out shape
# grpcomm's _forward_down produces), src/dst drawn over all daemons.
bursts = st.lists(
    st.tuples(st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
    min_size=1, max_size=16,
)


def _run_fanout(burst, engine_compat):
    cluster = Cluster(machine=laptop(num_nodes=NODES),
                      engine_compat=engine_compat)
    log = []
    for d in cluster.dvm.daemons:
        d.add_handler(
            "prop_burst",
            lambda msg, node=d.node: log.append(
                (cluster.engine.now, msg.src, node, msg.payload["i"])
            ),
        )
    for i, (src, dst) in enumerate(burst):
        cluster.dvm.daemons[src].send(dst, "prop_burst", {"i": i})
    cluster.run()
    return log, cluster.engine.events_executed


@given(bursts)
@settings(max_examples=30, deadline=None)
def test_fanout_delivery_order_matches_compat(burst):
    fast_log, fast_events = _run_fanout(burst, engine_compat=False)
    compat_log, compat_events = _run_fanout(burst, engine_compat=True)
    # Identical delivery sequence: same order, same timestamps, same
    # logical event count.
    assert fast_log == compat_log
    assert fast_events == compat_events
    # Everything sent was delivered exactly once.
    assert sorted(entry[3] for entry in fast_log) == list(range(len(burst)))


@given(bursts)
@settings(max_examples=30, deadline=None)
def test_fanout_never_overtakes_within_pair(burst):
    log, _ = _run_fanout(burst, engine_compat=False)
    # RML is FIFO per (src, dst): send order == delivery order per pair.
    per_pair = {}
    for _, src, dst, i in log:
        per_pair.setdefault((src, dst), []).append(i)
    for (src, dst), seen in per_pair.items():
        expected = [i for i, (s, d) in enumerate(burst) if (s, d) == (src, dst)]
        assert seen == expected


# ---------------------------------------------------------------------------
# PMIx KVS put / commit / fence / get bookkeeping
# ---------------------------------------------------------------------------
KEY_POOL = ["k0", "k1", "k2", "k3"]

# Per rank: a sequence of (key, value) puts (later puts overwrite).
put_scripts = st.lists(
    st.lists(st.tuples(st.sampled_from(KEY_POOL), st.integers(-99, 99)),
             max_size=5),
    min_size=2, max_size=4,
)


@given(put_scripts)
@settings(max_examples=15, deadline=None)
def test_kvs_fence_visibility_matches_model(scripts):
    nranks = len(scripts)
    # Dict model of what each rank committed.
    model = [dict(script) for script in scripts]

    def run(engine_compat):
        cluster = Cluster(machine=laptop(num_nodes=2),
                          engine_compat=engine_compat)
        job = cluster.launch(nranks, ppn=(nranks + 1) // 2)

        def rank_proc(rank):
            client = job.client(rank)
            yield from client.init()
            for key, value in scripts[rank]:
                client.put(key, value)
            yield from client.commit()
            yield from client.fence()
            seen = {}
            for peer in range(nranks):
                for key in KEY_POOL:
                    try:
                        value = yield from client.get(job.proc(peer), key)
                    except PmixError as err:
                        assert err.status == PMIX_ERR_NOT_FOUND
                        value = None
                    seen[(peer, key)] = value
            return seen

        results = run_procs(cluster, *(rank_proc(r) for r in range(nranks)))
        return results, cluster.now, cluster.engine.events_executed

    fast_results, fast_now, fast_events = run(engine_compat=False)
    compat_results, compat_now, compat_events = run(engine_compat=True)

    # Model agreement: after the fence, every rank sees exactly what each
    # peer committed, and nothing else.
    for seen in fast_results:
        for peer in range(nranks):
            for key in KEY_POOL:
                assert seen[(peer, key)] == model[peer].get(key)
    # Engine parity: identical answers, end time, and event bookkeeping.
    assert fast_results == compat_results
    assert fast_now == compat_now
    assert fast_events == compat_events

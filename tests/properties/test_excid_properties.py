"""Property-based tests of the exCID generator.

The invariant from DESIGN.md §5: any tree of derived communicators over
arbitrary dup sequences yields globally collision-free identifiers, and
replicas executing the same sequence agree exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ompi.excid import ExcidState

# A derivation script: each step picks an existing node (by index, mod
# the current population) to derive a child from, skipping nodes whose
# derivation capacity is exhausted.
scripts = st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=120)


def run_script(script, pgcid=1):
    """Apply a derivation script; returns all live ExcidStates."""
    nodes = [ExcidState.from_pgcid(pgcid)]
    for choice in script:
        parent = nodes[choice % len(nodes)]
        if parent.can_derive():
            nodes.append(parent.derive())
    return nodes


@given(scripts)
@settings(max_examples=200)
def test_no_collisions_within_a_tree(script):
    nodes = run_script(script)
    keys = [n.excid.key() for n in nodes]
    assert len(set(keys)) == len(keys)


@given(scripts)
@settings(max_examples=100)
def test_replicas_agree(script):
    """Two processes running the same constructor sequence derive
    identical ids with zero communication."""
    a = run_script(script)
    b = run_script(script)
    assert [n.excid for n in a] == [n.excid for n in b]


@given(scripts, st.integers(min_value=1, max_value=2**63))
@settings(max_examples=100)
def test_pgcid_field_preserved(script, pgcid):
    for node in run_script(script, pgcid=pgcid):
        assert node.excid.pgcid == pgcid


@given(scripts)
@settings(max_examples=100)
def test_distinct_pgcids_never_collide(script):
    """Trees rooted at different PGCIDs are disjoint by construction."""
    tree1 = {n.excid.key() for n in run_script(script, pgcid=1)}
    tree2 = {n.excid.key() for n in run_script(script, pgcid=2)}
    assert not tree1 & tree2


@given(scripts)
@settings(max_examples=100)
def test_active_subfield_invariants(script):
    for node in run_script(script):
        assert 0 <= node.active <= 7
        assert 1 <= node.counter <= 256
        # Subfields below the active one are still virgin.
        for i in range(node.active):
            assert node.excid.sub[i] == 0

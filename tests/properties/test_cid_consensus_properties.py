"""Property test: consensus CID agreement under random fragmentation.

DESIGN.md §5: the participants must always agree on the allocated CID
and it must be free on every participant's local table — for arbitrary
per-rank hole patterns (the exact scenario that fragments real CID
spaces)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig

NRANKS = 4

# Per-rank sets of pre-occupied CID indices (beyond the built-ins 0/1).
hole_patterns = st.lists(
    st.sets(st.integers(min_value=2, max_value=20), max_size=8),
    min_size=NRANKS, max_size=NRANKS,
)


@given(hole_patterns, st.integers(min_value=1, max_value=3))
@settings(max_examples=20, deadline=None)
def test_consensus_agrees_and_is_locally_free(holes, ndups):
    def main(mpi):
        comm = yield from mpi.mpi_init()
        sentinel = object()
        for idx in sorted(holes[comm.rank]):
            if mpi.cid_table.is_free(idx):
                mpi.cid_table.reserve(idx, sentinel)
        agreed = []
        dups = []
        for _ in range(ndups):
            dup = yield from comm.dup()
            dups.append(dup)
            cids = yield from comm.allgather(dup.local_cid)
            agreed.append(cids)
            # The agreed index is genuinely free+reserved locally.
            assert mpi.cid_table.get(dup.local_cid) is dup
            assert dup.local_cid not in holes[comm.rank]
        for dup in dups:
            dup.free()
        yield from mpi.mpi_finalize()
        return agreed

    results = run_mpi(SimSpec(nprocs=NRANKS, machine=laptop(num_nodes=2),
                              ppn=2, config=MpiConfig.baseline()), main)
    for per_dup in zip(*results):
        # Every rank observed the identical allgather outcome...
        assert all(x == per_dup[0] for x in per_dup)
        # ...and within it, every rank reported the same agreed CID.
        assert len(set(per_dup[0])) == 1

"""Property-based tests: Group algebra against a Python set/list model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ompi.constants import UNDEFINED
from repro.ompi.group import Group
from repro.pmix.types import PmixProc

ranks = st.lists(
    st.integers(min_value=0, max_value=63), min_size=0, max_size=24, unique=True
)


def to_group(rs):
    return Group([PmixProc("job", r) for r in rs])


@given(ranks, ranks)
@settings(max_examples=150)
def test_union_model(a, b):
    g = to_group(a).union(to_group(b))
    expected = list(a) + [r for r in b if r not in set(a)]
    assert [p.rank for p in g.members()] == expected


@given(ranks, ranks)
@settings(max_examples=150)
def test_intersection_model(a, b):
    g = to_group(a).intersection(to_group(b))
    assert [p.rank for p in g.members()] == [r for r in a if r in set(b)]


@given(ranks, ranks)
@settings(max_examples=150)
def test_difference_model(a, b):
    g = to_group(a).difference(to_group(b))
    assert [p.rank for p in g.members()] == [r for r in a if r not in set(b)]


@given(ranks)
@settings(max_examples=100)
def test_rank_of_proc_roundtrip(a):
    g = to_group(a)
    for i in range(g.size):
        assert g.rank_of(g.proc(i)) == i


@given(ranks, st.data())
@settings(max_examples=100)
def test_incl_model(a, data):
    g = to_group(a)
    if g.size == 0:
        return
    picks = data.draw(
        st.lists(st.integers(0, g.size - 1), max_size=g.size, unique=True)
    )
    sub = g.incl(picks)
    assert [p.rank for p in sub.members()] == [a[i] for i in picks]


@given(ranks, ranks)
@settings(max_examples=100)
def test_translate_ranks_identity(a, b):
    """Translating to another group and back is the identity where the
    process exists in both groups."""
    ga, gb = to_group(a), to_group(b)
    forward = ga.translate_ranks(list(range(ga.size)), gb)
    for i, t in enumerate(forward):
        if t != UNDEFINED:
            assert gb.proc(t) == ga.proc(i)
            assert gb.translate_ranks([t], ga) == [i]


@given(ranks)
@settings(max_examples=100)
def test_strided_equals_dense_semantics(a):
    """Whatever storage Group picks, observable behavior is identical."""
    g = to_group(a)
    members = g.members()
    assert len(members) == len(a)
    for r in range(64):
        proc = PmixProc("job", r)
        if r in set(a):
            assert proc in g
        else:
            assert g.rank_of(proc) == UNDEFINED


@given(st.integers(min_value=0, max_value=60), st.integers(min_value=4, max_value=20),
       st.integers(min_value=1, max_value=7))
@settings(max_examples=100)
def test_strided_compression_exact(start, count, stride):
    """Regular groups compress and still answer membership exactly."""
    members = [PmixProc("job", start + i * stride) for i in range(count)]
    g = Group(members)
    assert g.is_strided
    assert g.members() == tuple(members)
    for i, p in enumerate(members):
        assert g.rank_of(p) == i
    assert g.rank_of(PmixProc("job", start + count * stride)) == UNDEFINED

"""Property-based tests of the matching engine against an oracle.

The oracle replays the same interleaving of posts and arrivals with the
MPI matching rules written independently (linear scans over explicit
lists); the engine must produce the identical pairing.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.pml.matching import IncomingMsg, MatchingEngine, PostedRecv

# Events: ("post", src, tag) or ("msg", src, tag); small domains force
# collisions and wildcard interactions.
events = st.lists(
    st.tuples(
        st.sampled_from(["post", "msg"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
        st.booleans(),  # for posts: use ANY_SOURCE / ANY_TAG wildcards
    ),
    max_size=40,
)


@dataclass
class Oracle:
    posted: List = field(default_factory=list)
    unexpected: List = field(default_factory=list)

    @staticmethod
    def compatible(p, m) -> bool:
        src_ok = p["src"] == ANY_SOURCE or p["src"] == m["src"]
        if p["tag"] == ANY_TAG:
            tag_ok = m["tag"] >= 0
        else:
            tag_ok = p["tag"] == m["tag"]
        return src_ok and tag_ok

    def post(self, p) -> Optional[dict]:
        for i, m in enumerate(self.unexpected):
            if self.compatible(p, m):
                return self.unexpected.pop(i)
        self.posted.append(p)
        return None

    def msg(self, m) -> Optional[dict]:
        for i, p in enumerate(self.posted):
            if self.compatible(p, m):
                return self.posted.pop(i)
        self.unexpected.append(m)
        return None


@given(events)
@settings(max_examples=200)
def test_engine_matches_oracle(evts):
    engine = MatchingEngine()
    oracle = Oracle()
    seq = 0
    post_id = 0
    for kind, src, tag, wild in evts:
        if kind == "post":
            psrc = ANY_SOURCE if wild else src
            ptag = ANY_TAG if wild else tag
            op = {"src": psrc, "tag": ptag, "id": ("p", post_id)}
            ep = PostedRecv(src=psrc, tag=ptag, request=("p", post_id))
            post_id += 1
            got_e = engine.post_recv(0, ep)
            got_o = oracle.post(op)
            assert (got_e is None) == (got_o is None)
            if got_e is not None:
                assert got_e.payload == got_o["id"]
        else:
            om = {"src": src, "tag": tag, "id": ("m", seq)}
            em = IncomingMsg(src=src, tag=tag, seq=seq, nbytes=0, payload=("m", seq))
            seq += 1
            got_e = engine.incoming(0, em)
            got_o = oracle.msg(om)
            assert (got_e is None) == (got_o is None)
            if got_e is not None:
                assert got_e.request == got_o["id"]
    # Leftover queues agree too.
    assert engine.pending_posted(0) == len(oracle.posted)
    assert engine.pending_unexpected(0) == len(oracle.unexpected)


@given(events)
@settings(max_examples=100)
def test_no_message_lost_or_duplicated(evts):
    engine = MatchingEngine()
    seq = 0
    posts = msgs = matches = 0
    for kind, src, tag, wild in evts:
        if kind == "post":
            posts += 1
            if engine.post_recv(0, PostedRecv(
                src=ANY_SOURCE if wild else src,
                tag=ANY_TAG if wild else tag,
                request=None,
            )) is not None:
                matches += 1
        else:
            msgs += 1
            if engine.incoming(
                0, IncomingMsg(src=src, tag=tag, seq=seq, nbytes=0)
            ) is not None:
                matches += 1
            seq += 1
    assert matches + engine.pending_posted(0) == posts
    assert matches + engine.pending_unexpected(0) == msgs

"""Stateful property tests: long random operation sequences against
simple reference models (hypothesis RuleBasedStateMachine)."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.ompi.cid import CidTable
from repro.pmix.datastore import Datastore
from repro.pmix.types import PmixProc


class CidTableMachine(RuleBasedStateMachine):
    """CidTable vs a plain dict model."""

    def __init__(self):
        super().__init__()
        self.table = CidTable()
        self.model = {}

    @rule(idx=st.integers(min_value=0, max_value=200))
    def reserve_free_slot(self, idx):
        if idx in self.model:
            return
        token = object()
        self.table.reserve(idx, token)
        self.model[idx] = token

    @rule()
    @precondition(lambda self: self.model)
    def release_some(self):
        idx = sorted(self.model)[len(self.model) // 2]
        self.table.release(idx)
        del self.model[idx]

    @rule(floor=st.integers(min_value=0, max_value=100))
    def lowest_free_matches_model(self, floor):
        got = self.table.lowest_free(at_least=floor)
        expected = floor
        while expected in self.model:
            expected += 1
        assert got == expected

    @invariant()
    def lookups_match(self):
        assert self.table.live_count == len(self.model)
        for idx, token in self.model.items():
            assert self.table.get(idx) is token
            assert not self.table.is_free(idx)


class DatastoreMachine(RuleBasedStateMachine):
    """Datastore vs a nested-dict model (incl. wildcard fallback)."""

    def __init__(self):
        super().__init__()
        self.store = Datastore()
        self.model = {}

    keys = st.sampled_from(["a", "b", "c"])
    ranks = st.integers(min_value=0, max_value=3)
    values = st.integers()

    @rule(rank=ranks, key=keys, value=values)
    def put_rank(self, rank, key, value):
        self.store.put(PmixProc("ns", rank), key, value)
        self.model.setdefault(rank, {})[key] = value

    @rule(key=keys, value=values)
    def put_job(self, key, value):
        self.store.put_job("ns", key, value)
        self.model.setdefault("job", {})[key] = value

    @rule(rank=ranks, key=keys)
    def get_matches_model(self, rank, key):
        found, value = self.store.get(PmixProc("ns", rank), key)
        if key in self.model.get(rank, {}):
            assert (found, value) == (True, self.model[rank][key])
        elif key in self.model.get("job", {}):
            assert (found, value) == (True, self.model["job"][key])
        else:
            assert found is False

    @rule(rank=ranks)
    def blob_roundtrip(self, rank):
        blob = self.store.rank_blob(PmixProc("ns", rank))
        assert blob == self.model.get(rank, {})


class FileModelMachine(RuleBasedStateMachine):
    """Simulated-FS File ops vs a plain bytearray model.

    Drives the generator-based API through a trivial trampoline (no
    concurrency: a single rank's file handle on COMM_SELF semantics).
    """

    def __init__(self):
        super().__init__()
        from repro.api import SimSpec, make_world
        from repro.machine.presets import laptop
        from repro.ompi.io import File

        self.world = make_world(spec=SimSpec(
            nprocs=1, machine=laptop(num_nodes=1), ppn=1))
        done = []

        def setup(mpi):
            comm = yield from mpi.mpi_init()
            fh = yield from File.open(comm, "/model.bin")
            done.append((mpi, comm, fh))
            while True:
                from repro.simtime.process import Sleep

                yield Sleep(1.0)

        proc = self.world.cluster.spawn(setup(self.world.runtimes[0]), "fs")
        proc.defuse()
        self.world.cluster.run(until=1.0)
        self.mpi, self.comm, self.fh = done[0]
        self.model = bytearray()

    def drive(self, gen):
        """Run one file sub-generator to completion."""
        box = []

        def runner():
            box.append((yield from gen))

        proc = self.world.cluster.spawn(runner(), "op")
        proc.defuse()
        self.world.cluster.run(until=self.world.cluster.now + 10.0)
        assert proc.finished, "file op did not complete"
        if proc.exception:
            raise proc.exception
        return box[0]

    offsets = st.integers(min_value=0, max_value=64)
    blobs = st.binary(min_size=0, max_size=32)

    @rule(offset=offsets, data=blobs)
    def write_at(self, offset, data):
        self.drive(self.fh.write_at(offset, data))
        end = offset + len(data)
        if len(self.model) < end:
            self.model.extend(b"\x00" * (end - len(self.model)))
        self.model[offset:end] = data

    @rule(offset=offsets, count=st.integers(min_value=0, max_value=80))
    def read_matches_model(self, offset, count):
        got = self.drive(self.fh.read_at(offset, count))
        assert got == bytes(self.model[offset:offset + count])

    @invariant()
    def size_matches(self):
        assert len(self.fh._data()) == len(self.model)


TestCidTableStateful = CidTableMachine.TestCase
TestDatastoreStateful = DatastoreMachine.TestCase
FileModelMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestFileStateful = FileModelMachine.TestCase

"""Smoke tests for the observability CLI tools."""

import json
import subprocess
import sys

import pytest

pytestmark = pytest.mark.obs

_VALID_PHASES = {"B", "E", "X", "i", "I", "M", "s", "t", "f", "C"}


class TestObsReport:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/obs_report.py", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_list(self):
        proc = self.run("--list")
        assert proc.returncode == 0
        for name in ("fig3-init", "fence-chain", "fig4-dup"):
            assert name in proc.stdout

    def test_unknown_scenario_exits_2(self):
        proc = self.run("--scenario", "nope")
        assert proc.returncode == 2

    def test_fig3_init_report_and_export(self, tmp_path):
        out = tmp_path / "trace.json"
        proc = self.run("--scenario", "fig3-init", "--export", str(out))
        assert proc.returncode == 0, proc.stderr
        # The three report sections.
        assert "span flamegraph" in proc.stdout
        assert "metrics" in proc.stdout
        assert "critical path" in proc.stdout
        # Every layer shows up in the flamegraph.
        for needle in ("ompi.session.init", "pmix", "prrte.grpcomm",
                       "simtime.proc.run"):
            assert needle in proc.stdout
        # The export is valid Chrome trace_event JSON.
        obj = json.loads(out.read_text())
        assert isinstance(obj["traceEvents"], list) and obj["traceEvents"]
        for ev in obj["traceEvents"]:
            assert ev["ph"] in _VALID_PHASES
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0 and "name" in ev
            if ev["ph"] in ("s", "f"):
                assert "id" in ev
        names = {e["name"] for e in obj["traceEvents"] if e["ph"] == "X"}
        assert any(n.startswith("ompi.") for n in names)
        assert any(n.startswith("pmix.") for n in names)
        assert any(n.startswith("prrte.") for n in names)
        assert any(n.startswith("simtime.") for n in names)
        flows = [e for e in obj["traceEvents"] if e["ph"] == "s"]
        assert any(e["name"].startswith("pml.") for e in flows)


class TestRunFigureObs:
    def run(self, *args):
        return subprocess.run(
            [sys.executable, "tools/run_figure.py", *args],
            capture_output=True, text=True, timeout=600, cwd=".",
        )

    def test_fig3a_obs_json(self, tmp_path):
        out = tmp_path / "fig3a.json"
        proc = self.run("fig3a", "--obs", "--json", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "critical-path attribution" in proc.stdout
        data = json.loads(out.read_text())
        assert data["obs"]
        for entry in data["obs"].values():
            assert entry["total"] > 0
            assert entry["stages"]
            stage_sum = sum(st["duration"] for st in entry["stages"])
            assert stage_sum == pytest.approx(entry["total"], abs=1e-12)

    def test_obs_on_unsupported_figure_exits_2(self):
        proc = self.run("fig6b", "--obs")
        assert proc.returncode == 2
        assert "does not support --obs" in proc.stderr

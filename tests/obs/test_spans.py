"""Unit tests for the span/flow model in :mod:`repro.simtime.trace`."""

import pytest

from repro.simtime.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    track_for_daemon,
    track_for_proc,
)

pytestmark = pytest.mark.obs


class TestSpanNesting:
    def test_parent_is_innermost_open_span_on_track(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.outer")
        b = tr.begin(1.0, "t", "x.inner")
        c = tr.begin(2.0, "other", "x.elsewhere")
        assert tr.spans[a].parent == 0
        assert tr.spans[b].parent == a
        assert tr.spans[c].parent == 0     # stacks are per-track

    def test_end_closes_and_pops(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.a")
        b = tr.begin(1.0, "t", "x.b")
        tr.end(2.0, b)
        assert tr.spans[b].end == 2.0
        assert tr.spans[b].duration == 1.0
        c = tr.begin(3.0, "t", "x.c")
        assert tr.spans[c].parent == a     # b no longer on the stack
        tr.end(4.0, c)
        tr.end(5.0, a)

    def test_out_of_order_end_removes_from_mid_stack(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.a")
        b = tr.begin(1.0, "t", "x.b")
        tr.end(2.0, a)                     # close the OUTER first
        assert tr.spans[a].end == 2.0
        c = tr.begin(3.0, "t", "x.c")
        assert tr.spans[c].parent == b     # b is still open and innermost

    def test_end_tolerates_zero_and_double_close(self):
        tr = Tracer()
        tr.end(1.0, 0)                     # never raises
        a = tr.begin(0.0, "t", "x.a")
        tr.end(1.0, a)
        tr.end(9.0, a)                     # double close keeps first end
        assert tr.spans[a].end == 1.0

    def test_span_tree_shape(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.root")
        b = tr.begin(1.0, "t", "x.kid1")
        tr.end(2.0, b)
        c = tr.begin(3.0, "t", "x.kid2")
        tr.end(4.0, c)
        tr.end(5.0, a)
        assert tr.span_tree(a) == ("x.root", [("x.kid1", []), ("x.kid2", [])])

    def test_category_filter_applies_to_spans(self):
        tr = Tracer(categories={"pmix"})
        assert tr.begin(0.0, "t", "ompi.mpi.init") == 0
        sid = tr.begin(0.0, "t", "pmix.client.fence")
        assert sid != 0
        tr.end(1.0, 0)                     # filtered id is safe to end


class TestFlows:
    def test_flow_begin_end_binds_once(self):
        tr = Tracer()
        fid = tr.flow_begin(0.0, "src", "rml.tag", nbytes=10)
        assert not tr.flows[fid].complete
        tr.flow_end(1.0, "dst", fid)
        tr.flow_end(2.0, "dst2", fid)      # duplicate copy: first arrival wins
        f = tr.flows[fid]
        assert f.complete and f.dst_track == "dst" and f.dst_time == 1.0

    def test_flow_records_span_context(self):
        tr = Tracer()
        s_src = tr.begin(0.0, "src", "x.sender")
        fid = tr.flow_begin(0.5, "src", "x.msg")
        s_dst = tr.begin(1.0, "dst", "x.receiver")
        tr.flow_end(1.5, "dst", fid)
        assert tr.flows[fid].src_span == s_src
        assert tr.flows[fid].dst_span == s_dst

    def test_one_shot_flow(self):
        tr = Tracer()
        fid = tr.flow("pmix.release", "daemon:0", 1.0, "rank:j/0", 2.0)
        assert tr.flows[fid].complete
        assert tr.flows[fid].src_time == 1.0 and tr.flows[fid].dst_time == 2.0


class TestLegacyEmit:
    def test_emit_becomes_zero_duration_instant(self):
        tr = Tracer()
        tr.emit(1.5, "faults", "kill_proc", rank=3)
        assert len(tr.records) == 1
        assert len(tr.instants) == 1
        inst = tr.instants[0]
        assert inst.track == "events:faults"
        assert inst.name == "faults.kill_proc"
        assert inst.time == 1.5
        assert inst.attrs == {"rank": 3}

    def test_find_uses_category_index(self):
        tr = Tracer()
        for i in range(5):
            tr.emit(float(i), "pml", "send", i=i)
        for i in range(3):
            tr.emit(float(i), "pmix", "fence", i=i)
        assert tr.count("pml") == 5
        assert tr.count("pmix") == 3
        assert [r.detail["i"] for r in tr.find("pml")] == list(range(5))
        assert tr.count("pml", "send") == 5
        assert tr.count("nope") == 0

    def test_clear_resets_ids_and_index(self):
        tr = Tracer()
        tr.begin(0.0, "t", "x.a")
        tr.flow_begin(0.0, "t", "x.f")
        tr.emit(0.0, "c", "e")
        tr.clear()
        assert not tr.records and not tr.spans and not tr.flows
        assert tr.count("c") == 0
        assert tr.begin(0.0, "t", "x.a") == 1      # sid counter reset
        assert tr.flow_begin(0.0, "t", "x.f") == 1  # fid counter reset


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tr = Tracer()
        tr.enabled = False
        assert tr.begin(0.0, "t", "x.a") == 0
        assert tr.flow_begin(0.0, "t", "x.f") == 0
        tr.event(0.0, "t", "x.e")
        tr.emit(0.0, "c", "e")
        assert not tr.spans and not tr.flows and not tr.instants and not tr.records

    def test_null_tracer_cannot_be_enabled(self):
        nt = NullTracer()
        nt.enabled = True
        assert nt.enabled is False
        assert nt.begin(0.0, "t", "x.a") == 0
        assert NULL_TRACER.enabled is False


class TestTrackNames:
    def test_track_helpers(self):
        class P:
            nspace, rank = "job-1", 3

        assert track_for_proc(P) == "rank:job-1/3"
        assert track_for_daemon(2) == "daemon:2"

"""Unit tests for the metrics registry and histograms."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry

pytestmark = pytest.mark.obs


class TestHistogram:
    def test_percentile_interpolates(self):
        h = Histogram()
        for v in (4, 1, 3, 2):             # insertion order must not matter
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 4
        assert h.percentile(50) == 2.5
        assert h.percentile(25) == 1.75

    def test_percentile_units_are_the_observed_units(self):
        """Samples in seconds stay seconds — no hidden scaling."""
        h = Histogram()
        h.observe(0.001)
        h.observe(0.003)
        assert h.percentile(50) == pytest.approx(0.002)
        assert h.mean == pytest.approx(0.002)
        assert h.total == pytest.approx(0.004)

    def test_single_sample_and_empty(self):
        h = Histogram()
        assert h.percentile(90) == 0.0
        assert h.summary() == {"count": 0}
        h.observe(7.0)
        assert h.percentile(1) == 7.0 and h.percentile(99) == 7.0

    def test_out_of_range_percentile_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = Histogram()
        for v in range(1, 11):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 10 and s["min"] == 1 and s["max"] == 10
        assert s["p50"] == 5.5
        assert set(s) == {"count", "min", "max", "mean", "p50", "p90", "p99"}


class TestPercentileEdges:
    def test_empty_histogram_is_zero_everywhere(self):
        h = Histogram()
        for p in (0, 50, 100):
            assert h.percentile(p) == 0.0

    def test_single_sample_every_percentile(self):
        h = Histogram()
        h.observe(3.5)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 3.5

    def test_exact_bounds(self):
        h = Histogram()
        for v in (5, 1, 9, 3):
            h.observe(v)
        assert h.percentile(0) == 1 and h.percentile(100) == 9

    def test_duplicate_heavy_distribution(self):
        h = Histogram()
        for _ in range(99):
            h.observe(1.0)
        h.observe(100.0)
        assert h.percentile(50) == 1.0
        assert h.percentile(98) == 1.0
        assert h.percentile(100) == 100.0

    def test_negative_and_fractional_p(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        h.observe(2.0)
        assert h.percentile(75.0) == pytest.approx(1.75)


class TestBoundedReservoir:
    def test_exact_below_cap(self):
        """Below the cap the bounded histogram is byte-for-byte the
        unbounded one: same samples, same percentiles."""
        bounded, unbounded = Histogram(max_samples=100), Histogram()
        for v in range(50):
            bounded.observe(float(v))
            unbounded.observe(float(v))
        assert bounded.values == unbounded.values
        assert bounded.summary() == unbounded.summary()

    def test_memory_bounded_past_cap(self):
        h = Histogram(max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h.values) == 64

    def test_running_aggregates_stay_exact(self):
        h = Histogram(max_samples=8)
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.count == 1000
        assert h.total == pytest.approx(500500.0)
        assert h.mean == pytest.approx(500.5)
        s = h.summary()
        assert s["count"] == 1000 and s["min"] == 1.0 and s["max"] == 1000.0

    def test_seeded_and_deterministic(self):
        def fill(seed):
            h = Histogram(max_samples=16, seed=seed)
            for v in range(500):
                h.observe(float(v))
            return list(h.values)

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)       # the seed matters

    def test_reservoir_is_representative(self):
        h = Histogram(max_samples=200, seed=3)
        for v in range(10_000):
            h.observe(float(v))
        # Algorithm R keeps a uniform sample: the median estimate must
        # land well inside the middle of the distribution.
        assert 3000 < h.percentile(50) < 7000

    def test_bad_cap_raises(self):
        with pytest.raises(ValueError):
            Histogram(max_samples=0)

    def test_registry_threads_cap_and_seed(self):
        m = MetricsRegistry(enabled=True, histogram_max_samples=4,
                            reservoir_seed=11)
        for v in range(100):
            m.observe("serve.latency", float(v))
        h = m.histogram("serve.latency")
        assert len(h.values) == 4 and h.count == 100

    def test_registry_per_key_seeds_differ(self):
        """Two label sets must not correlate their sampling decisions."""
        m = MetricsRegistry(enabled=True, histogram_max_samples=8)
        for v in range(200):
            m.observe("serve.run", float(v), node=0)
            m.observe("serve.run", float(v), node=1)
        assert m.histogram("serve.run", node=0).values \
            != m.histogram("serve.run", node=1).values


class TestMergedHistogram:
    def test_merges_label_sets_in_sorted_order(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.observe("serve.latency", 1.0, node=0)
        a.observe("serve.latency", 3.0, node=1)
        b.observe("serve.latency", 3.0, node=1)     # reversed insertion
        b.observe("serve.latency", 1.0, node=0)
        assert a.merged_histogram("serve.latency").values \
            == b.merged_histogram("serve.latency").values

    def test_merge_keeps_exact_aggregates_with_bounded_reservoirs(self):
        m = MetricsRegistry(enabled=True, histogram_max_samples=4)
        for v in range(1, 101):
            m.observe("serve.run", float(v), node=v % 2)
        merged = m.merged_histogram("serve.run")
        assert merged.count == 100
        assert merged.total == pytest.approx(5050.0)
        assert merged.mean == pytest.approx(50.5)
        s = merged.summary()
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert len(merged.values) == 8              # 2 reservoirs of 4

    def test_merge_ignores_other_names_and_handles_empty(self):
        m = MetricsRegistry(enabled=True)
        m.observe("serve.latency", 1.0)
        m.observe("serve.run", 9.0)
        assert m.merged_histogram("serve.latency").values == [1.0]
        empty = m.merged_histogram("nothing.here")
        assert empty.count == 0 and empty.summary() == {"count": 0}


class TestRegistry:
    def test_disabled_by_default_force_overrides(self):
        m = MetricsRegistry()
        m.inc("a.b")
        m.observe("a.h", 1.0)
        assert m.names() == []
        m.inc("a.b", force=True)
        m.set("a.g", 2.0, force=True)
        m.observe("a.h", 1.0, force=True)
        assert m.names() == ["a.b", "a.g", "a.h"]

    def test_label_aggregation(self):
        m = MetricsRegistry(enabled=True)
        m.inc("pml.bytes", 10, node=0)
        m.inc("pml.bytes", 20, node=0)
        m.inc("pml.bytes", 5, node=1)
        assert m.value("pml.bytes", node=0) == 30
        assert m.aggregate("pml.bytes") == {"total": 35}
        assert m.aggregate("pml.bytes", by="node") == {0: 30, 1: 5}

    def test_merged_histogram_spans_labels(self):
        m = MetricsRegistry(enabled=True)
        m.observe("fanin", 2, node=0)
        m.observe("fanin", 4, node=1)
        merged = m.merged_histogram("fanin")
        assert merged.count == 2 and merged.percentile(50) == 3

    def test_rows_are_deterministic(self):
        m1 = MetricsRegistry(enabled=True)
        m2 = MetricsRegistry(enabled=True)
        m1.inc("b", 1)
        m1.inc("a", 2, node=1)
        m2.inc("a", 2, node=1)              # reversed insertion order
        m2.inc("b", 1)
        assert m1.rows() == m2.rows()
        assert m1.render() == m2.render()
        assert m1.to_dict() == m2.to_dict()

    def test_gauge_overwrites(self):
        m = MetricsRegistry(enabled=True)
        m.set("depth", 3)
        m.set("depth", 1)
        assert m.value("depth") == 1

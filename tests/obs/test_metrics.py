"""Unit tests for the metrics registry and histograms."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry

pytestmark = pytest.mark.obs


class TestHistogram:
    def test_percentile_interpolates(self):
        h = Histogram()
        for v in (4, 1, 3, 2):             # insertion order must not matter
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 4
        assert h.percentile(50) == 2.5
        assert h.percentile(25) == 1.75

    def test_percentile_units_are_the_observed_units(self):
        """Samples in seconds stay seconds — no hidden scaling."""
        h = Histogram()
        h.observe(0.001)
        h.observe(0.003)
        assert h.percentile(50) == pytest.approx(0.002)
        assert h.mean == pytest.approx(0.002)
        assert h.total == pytest.approx(0.004)

    def test_single_sample_and_empty(self):
        h = Histogram()
        assert h.percentile(90) == 0.0
        assert h.summary() == {"count": 0}
        h.observe(7.0)
        assert h.percentile(1) == 7.0 and h.percentile(99) == 7.0

    def test_out_of_range_percentile_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = Histogram()
        for v in range(1, 11):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 10 and s["min"] == 1 and s["max"] == 10
        assert s["p50"] == 5.5
        assert set(s) == {"count", "min", "max", "mean", "p50", "p90", "p99"}


class TestRegistry:
    def test_disabled_by_default_force_overrides(self):
        m = MetricsRegistry()
        m.inc("a.b")
        m.observe("a.h", 1.0)
        assert m.names() == []
        m.inc("a.b", force=True)
        m.set("a.g", 2.0, force=True)
        m.observe("a.h", 1.0, force=True)
        assert m.names() == ["a.b", "a.g", "a.h"]

    def test_label_aggregation(self):
        m = MetricsRegistry(enabled=True)
        m.inc("pml.bytes", 10, node=0)
        m.inc("pml.bytes", 20, node=0)
        m.inc("pml.bytes", 5, node=1)
        assert m.value("pml.bytes", node=0) == 30
        assert m.aggregate("pml.bytes") == {"total": 35}
        assert m.aggregate("pml.bytes", by="node") == {0: 30, 1: 5}

    def test_merged_histogram_spans_labels(self):
        m = MetricsRegistry(enabled=True)
        m.observe("fanin", 2, node=0)
        m.observe("fanin", 4, node=1)
        merged = m.merged_histogram("fanin")
        assert merged.count == 2 and merged.percentile(50) == 3

    def test_rows_are_deterministic(self):
        m1 = MetricsRegistry(enabled=True)
        m2 = MetricsRegistry(enabled=True)
        m1.inc("b", 1)
        m1.inc("a", 2, node=1)
        m2.inc("a", 2, node=1)              # reversed insertion order
        m2.inc("b", 1)
        assert m1.rows() == m2.rows()
        assert m1.render() == m2.render()
        assert m1.to_dict() == m2.to_dict()

    def test_gauge_overwrites(self):
        m = MetricsRegistry(enabled=True)
        m.set("depth", 3)
        m.set("depth", 1)
        assert m.value("depth") == 1

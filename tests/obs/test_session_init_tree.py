"""White-box shape of a traced 2-node MPI_Session_init run.

Pins the acceptance criteria of the observability layer: nested spans
from all four layers (simtime / PMIx / PRRTE / OMPI), the exact span
tree under each rank, send -> receive causality edges, and a metrics
table with at least ten distinct names.
"""

import pytest

from repro.obs.scenarios import run_scenario

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def run():
    return run_scenario("fig3-init", nodes=2, ppn=1)


EXPECTED_RANK_TREE = (
    "simtime.proc.run",
    [
        ("ompi.session.init",
         [("ompi.init.load_binary", []), ("pmix.client.init", [])]),
        ("ompi.session.group_from_pset", []),
        ("ompi.comm.create_from_group",
         [("pmix.client.group_construct", [])]),
        ("ompi.coll.barrier", []),
        ("ompi.session.finalize", [("pmix.client.finalize", [])]),
    ],
)


class TestSpanTree:
    def test_exact_rank_span_tree(self, run):
        for rank in (0, 1):
            roots = run.tracer.roots(track=f"rank:prrte-job-1/{rank}")
            assert len(roots) == 1
            assert run.tracer.span_tree(roots[0].sid) == EXPECTED_RANK_TREE

    def test_all_spans_closed(self, run):
        assert all(s.end is not None for s in run.tracer.spans.values())

    def test_all_four_layers_present(self, run):
        layers = {s.name.split(".", 1)[0] for s in run.tracer.spans.values()}
        assert {"simtime", "pmix", "prrte", "ompi"} <= layers

    def test_daemon_side_spans_on_daemon_tracks(self, run):
        server = run.tracer.spans_named("pmix.server.group")
        assert {s.track for s in server} == {"daemon:0", "daemon:1"}
        grpcomm = run.tracer.spans_named("prrte.grpcomm.allgather")
        assert grpcomm and all(s.track.startswith("daemon:") for s in grpcomm)


class TestCausality:
    def test_send_recv_edges_cross_rank_tracks(self, run):
        """The barrier's pml traffic produces complete send->recv edges."""
        user = [f for f in run.tracer.flows.values() if f.name == "pml.user"]
        assert user
        cross = [f for f in user
                 if f.complete and f.src_track != f.dst_track]
        assert cross
        for f in cross:
            assert f.src_track.startswith("rank:")
            assert f.dst_track.startswith("rank:")
            assert f.src_time < f.dst_time

    def test_rml_and_release_edges(self, run):
        names = {f.name for f in run.tracer.flows.values()}
        assert "rml.grpcomm_up" in names
        assert "pmix.rpc.group" in names
        assert "pmix.release" in names

    def test_all_flows_complete_without_faults(self, run):
        assert all(f.complete for f in run.tracer.flows.values())


class TestMetrics:
    def test_at_least_ten_distinct_names(self, run):
        assert len(run.metrics.names()) >= 10

    def test_key_counters(self, run):
        m = run.metrics
        assert m.value("rml.messages") > 0
        assert m.value("pml.packets") > 0
        assert m.value("prrte.pgcid.allocated") == 1
        assert m.aggregate("ompi.session.inits") == {"total": 2}
        assert m.aggregate("ompi.comm.creates") == {"total": 2}
        fanin = m.merged_histogram("pmix.group.fanin")
        assert fanin.count == 2            # one collective per node

"""Prometheus text exposition of the metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import prom_name, prometheus_text

pytestmark = pytest.mark.obs


class TestPromName:
    def test_dots_become_underscores(self):
        assert prom_name("serve.queue.depth") == "serve_queue_depth"

    def test_invalid_chars_sanitized(self):
        assert prom_name("a.b-c d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert prom_name("9lives") == "_9lives"


class TestExposition:
    def test_counter_and_gauge_families(self):
        m = MetricsRegistry(enabled=True)
        m.inc("serve.requests", status="ok")
        m.inc("serve.requests", 2, status="error")
        m.set("serve.queue.depth", 3)
        text = prometheus_text(m)
        assert "# TYPE serve_requests counter\n" in text
        assert 'serve_requests{status="error"} 2\n' in text
        assert 'serve_requests{status="ok"} 1\n' in text
        assert "# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n" in text

    def test_histogram_renders_as_summary(self):
        m = MetricsRegistry(enabled=True)
        for v in (0.1, 0.2, 0.3, 0.4):
            m.observe("serve.latency", v)
        text = prometheus_text(m)
        assert "# TYPE serve_latency summary" in text
        assert 'serve_latency{quantile="0.5"} 0.25' in text
        assert 'serve_latency{quantile="0.99"}' in text
        assert "serve_latency_sum 1\n" in text
        assert "serve_latency_count 4\n" in text

    def test_histogram_labels_compose_with_quantile(self):
        m = MetricsRegistry(enabled=True)
        m.observe("sweep.task", 1.0, jobs=2)
        text = prometheus_text(m)
        assert 'sweep_task{jobs="2",quantile="0.5"} 1\n' in text
        assert 'sweep_task_count{jobs="2"} 1\n' in text

    def test_label_values_escaped(self):
        m = MetricsRegistry(enabled=True)
        m.inc("serve.errors", reason='bad "quote"\nnewline\\slash')
        text = prometheus_text(m)
        assert ('serve_errors{reason="bad \\"quote\\"\\nnewline\\\\slash"} 1'
                in text)

    def test_deterministic_across_insertion_order(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        for reg, order in ((a, (0, 1)), (b, (1, 0))):
            for i in order:
                reg.inc("serve.requests", status=f"s{i}")
                reg.observe("serve.latency", float(i + 1), node=i)
        assert prometheus_text(a) == prometheus_text(b)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_output_ends_with_newline(self):
        m = MetricsRegistry(enabled=True)
        m.inc("a.b")
        assert prometheus_text(m).endswith("\n")

"""The persistent run ledger (sqlite)."""

import threading

import pytest

from repro.obs.store import RunLedger

pytestmark = pytest.mark.obs


@pytest.fixture
def ledger(tmp_path):
    with RunLedger(str(tmp_path / "ledger.sqlite")) as led:
        yield led


class TestRecord:
    def test_append_and_query(self, ledger):
        rid = ledger.record(kind="serve", scenario="sim", digest="abc123",
                            wall_s=0.5, trace="cli-1", ts=10.0)
        assert rid == 1
        rows = ledger.query()
        assert len(rows) == 1
        row = rows[0]
        assert row["kind"] == "serve" and row["scenario"] == "sim"
        assert row["digest"] == "abc123" and row["trace"] == "cli-1"
        assert row["cached"] is False and row["status"] == "ok"
        assert row["ts"] == 10.0

    def test_detail_round_trips_as_json(self, ledger):
        ledger.record(kind="bench", scenario="comm-dup", ts=1.0,
                      detail={"events": 1768, "speedup": 2.5})
        row = ledger.query()[0]
        assert row["detail"] == {"events": 1768, "speedup": 2.5}

    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "l.sqlite")
        with RunLedger(path) as a:
            a.record(kind="sweep", scenario="soak", ts=1.0)
        with RunLedger(path) as b:
            assert b.count() == 1

    def test_thread_safe_writes(self, ledger):
        def write(n):
            for i in range(20):
                ledger.record(kind="serve", scenario=f"t{n}", ts=float(i))

        threads = [threading.Thread(target=write, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.count() == 80


class TestQuery:
    @pytest.fixture(autouse=True)
    def seed(self, ledger):
        ledger.record(kind="serve", scenario="sim", digest="aabb", ts=1.0,
                      wall_s=0.1)
        ledger.record(kind="serve", scenario="sim", digest="aacc", ts=2.0,
                      wall_s=0.3, cached=True)
        ledger.record(kind="sweep", scenario="soak", digest="ddee", ts=3.0,
                      wall_s=0.2)
        ledger.record(kind="bench", scenario="comm-dup", ts=4.0, wall_s=0.05,
                      status="error")

    def test_filter_by_kind(self, ledger):
        assert [r["scenario"] for r in ledger.query(kind="sweep")] == ["soak"]

    def test_filter_by_scenario(self, ledger):
        assert len(ledger.query(scenario="sim")) == 2

    def test_digest_prefix_match(self, ledger):
        assert len(ledger.query(digest="aa")) == 2
        assert len(ledger.query(digest="aab")) == 1
        assert ledger.query(digest="zz") == []

    def test_since_window(self, ledger):
        assert [r["ts"] for r in ledger.query(since=3.0)] == [3.0, 4.0]

    def test_limit_keeps_newest_oldest_first(self, ledger):
        rows = ledger.query(limit=2)
        assert [r["ts"] for r in rows] == [3.0, 4.0]

    def test_trend_aggregates_per_scenario(self, ledger):
        trend = {(t["kind"], t["scenario"]): t for t in ledger.trend()}
        sim = trend[("serve", "sim")]
        assert sim["runs"] == 2 and sim["cached"] == 1 and sim["ok"] == 2
        assert sim["wall_mean_s"] == pytest.approx(0.2)
        assert sim["first_ts"] == 1.0 and sim["last_ts"] == 2.0
        assert trend[("bench", "comm-dup")]["ok"] == 0

    def test_trend_filters(self, ledger):
        assert len(ledger.trend(kind="serve")) == 1
        assert ledger.trend(since=5.0) == []

"""Wall-clock telemetry: spans, flows, trace normalization."""

import json

import pytest

from repro.obs.export import dumps, validate_chrome_trace
from repro.obs.live import DISABLED, LiveTelemetry, normalize_chrome_trace, trace_id

pytestmark = pytest.mark.obs


class FakeClock:
    """Deterministic monotonic clock: advances on demand."""

    def __init__(self):
        self.t = 100.0          # non-zero start: now() must subtract t0

    def __call__(self):
        return self.t


def make_tel():
    clock = FakeClock()
    return LiveTelemetry(clock=clock), clock


class TestTraceId:
    def test_deterministic_format(self):
        assert trace_id("cli", 1) == "cli-1"
        assert trace_id("s", 42) == "s-42"


class TestLiveTelemetry:
    def test_now_starts_at_zero(self):
        tel, clock = make_tel()
        assert tel.now() == 0.0
        clock.t += 1.5
        assert tel.now() == pytest.approx(1.5)

    def test_span_records_wall_duration(self):
        tel, clock = make_tel()
        sid = tel.begin("req:t-1", "serve.request", scenario="sim")
        clock.t += 0.25
        tel.end(sid)
        span = tel.tracer.spans[sid]
        assert span.start == 0.0
        assert span.duration == pytest.approx(0.25)
        assert span.attrs == {"scenario": "sim"}

    def test_same_track_spans_nest(self):
        tel, clock = make_tel()
        outer = tel.begin("req:t-1", "serve.request")
        inner = tel.begin("req:t-1", "serve.queue")
        clock.t += 0.1
        tel.end(inner)
        tel.end(outer)
        assert tel.tracer.spans[inner].parent == outer

    def test_annotate_after_end(self):
        tel, clock = make_tel()
        sid = tel.begin("req:t-1", "serve.request")
        tel.end(sid)
        tel.annotate(sid, status="ok", cached=False)
        assert tel.tracer.spans[sid].attrs["status"] == "ok"

    def test_flow_stamps_both_ends_now(self):
        tel, clock = make_tel()
        clock.t += 0.5
        fid = tel.flow("serve.dispatch", "req:t-1", "serve:worker/0")
        flow = tel.tracer.flows[fid]
        assert flow.complete
        assert flow.src_time == flow.dst_time == pytest.approx(0.5)

    def test_span_context_manager(self):
        tel, clock = make_tel()
        with tel.span("sweep:task", "sweep.task", index=0) as sid:
            clock.t += 0.01
        assert tel.tracer.spans[sid].end is not None

    def test_export_is_valid_chrome_trace(self):
        tel, clock = make_tel()
        with tel.span("req:t-1", "serve.request"):
            clock.t += 0.1
        tel.event("req:t-1", "serve.cache.probe", result="miss")
        obj = tel.export()
        assert validate_chrome_trace(obj) == []

    def test_write_creates_parent_dirs(self, tmp_path):
        tel, clock = make_tel()
        with tel.span("req:t-1", "serve.request"):
            clock.t += 0.1
        path = tmp_path / "deep" / "trace.json"
        tel.write(str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_disabled_records_nothing(self):
        tel = LiveTelemetry(enabled=False)
        sid = tel.begin("t", "serve.request")
        assert sid == 0
        tel.end(sid)
        tel.annotate(sid, status="ok")
        tel.event("t", "serve.cache.probe")
        assert tel.flow("serve.dispatch", "a", "b") == 0
        assert tel.tracer.spans == {} and tel.tracer.instants == []
        assert DISABLED.enabled is False


class TestNormalization:
    def run_sequence(self, jitter):
        """The same logical request sequence under different timing."""
        tel, clock = make_tel()
        sid = tel.begin("req:cli-1", "serve.request", trace="cli-1",
                        scenario="sim")
        qid = tel.begin("req:cli-1", "serve.queue", trace="cli-1")
        clock.t += 0.01 * jitter
        tel.end(qid)
        tel.flow("serve.dispatch", "req:cli-1", "serve:worker/0",
                 trace="cli-1")
        rid = tel.begin("serve:worker/0", "serve.run", trace="cli-1",
                        scenario="sim", attempt=1)
        clock.t += 0.05 * jitter
        tel.annotate(rid, outcome="ok")
        tel.end(rid)
        tel.annotate(sid, status="ok")
        tel.end(sid)
        return tel.export()

    def test_byte_deterministic_modulo_timestamps(self):
        """Identical request sequences with different wall timings
        serialize byte-identically after normalization — the live
        telemetry determinism contract."""
        a = normalize_chrome_trace(self.run_sequence(jitter=1))
        b = normalize_chrome_trace(self.run_sequence(jitter=7))
        assert dumps(a) == dumps(b)

    def test_normalize_zeroes_only_time_fields(self):
        obj = self.run_sequence(jitter=3)
        norm = normalize_chrome_trace(obj)
        for ev in norm["traceEvents"]:
            assert ev.get("ts", 0) == 0 and ev.get("dur", 0) == 0
        names = {e["name"] for e in norm["traceEvents"] if e.get("ph") == "X"}
        assert {"serve.request", "serve.queue", "serve.run"} <= names
        # attrs survive normalization
        run = [e for e in norm["traceEvents"] if e["name"] == "serve.run"][0]
        assert run["args"]["trace"] == "cli-1"

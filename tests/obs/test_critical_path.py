"""Critical-path extraction: hand-built DAGs and the fence-chain scenario."""

import pytest

from repro.obs import compute_critical_path
from repro.obs.scenarios import run_scenario
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.obs


class TestSyntheticDag:
    def test_single_track_attributes_innermost(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.outer")
        b = tr.begin(2.0, "t", "x.inner")
        tr.end(4.0, b)
        tr.end(6.0, a)
        cp = compute_critical_path(tr)
        assert [(s.name, s.start, s.end) for s in cp.stages] == [
            ("x.outer", 0.0, 2.0), ("x.inner", 2.0, 4.0), ("x.outer", 4.0, 6.0)
        ]
        assert cp.total == 6.0
        assert cp.stage_sum() == cp.total

    def test_flow_jumps_to_source_track(self):
        tr = Tracer()
        a = tr.begin(0.0, "A", "x.sender")
        tr.end(3.0, a)
        fid = tr.flow_begin(3.0, "A", "x.msg")
        tr.flow_end(5.0, "B", fid)
        b = tr.begin(5.0, "B", "x.receiver")
        tr.end(9.0, b)
        cp = compute_critical_path(tr)
        assert [(s.name, s.kind) for s in cp.stages] == [
            ("x.sender", "span"), ("x.msg", "flow"), ("x.receiver", "span")
        ]
        assert cp.stages[1].track == "A->B"
        assert cp.stage_sum() == cp.total == 9.0

    def test_gap_is_idle(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.a")
        tr.end(1.0, a)
        b = tr.begin(3.0, "t", "x.b")
        tr.end(4.0, b)
        cp = compute_critical_path(tr)
        assert [(s.name, s.kind) for s in cp.stages] == [
            ("x.a", "span"), ("idle", "idle"), ("x.b", "span")
        ]

    def test_incomplete_flow_is_ignored(self):
        tr = Tracer()
        tr.flow_begin(0.0, "A", "x.dropped")    # never arrives
        b = tr.begin(1.0, "B", "x.only")
        tr.end(2.0, b)
        cp = compute_critical_path(tr)
        assert all(s.kind != "flow" for s in cp.stages)

    def test_empty_tracer(self):
        cp = compute_critical_path(Tracer())
        assert cp.stages == [] and cp.total == 0.0


class TestFenceChain:
    """Sequential PMIx fences: the critical path IS the fence chain."""

    @pytest.fixture(scope="class")
    def run(self):
        return run_scenario("fence-chain", nodes=2, ppn=2)

    def test_stage_sum_equals_end_to_end(self, run):
        cp = compute_critical_path(run.tracer)
        assert cp.stage_sum() == pytest.approx(cp.total, abs=1e-12)
        assert cp.t_end == pytest.approx(run.t_end)

    def test_path_between_fences_is_fence_machinery(self, run):
        fences = run.tracer.spans_named("pmix.client.fence")
        assert len(fences) == 16            # 4 ranks x 4 fences
        first = min(s.start for s in fences)
        target = max(fences, key=lambda s: (s.end, s.sid))
        cp = compute_critical_path(run.tracer, t_start=first, target=target)
        assert cp.stage_sum() == pytest.approx(cp.total, abs=1e-12)
        allowed_spans = {
            "pmix.client.fence", "pmix.server.fence",
            "prrte.grpcomm.allgather", "simtime.proc.run", "idle",
        }
        allowed_flows = {
            "pmix.rpc.fence", "pmix.release",
            "rml.grpcomm_up", "rml.grpcomm_down", "rml.grpcomm_flat",
        }
        for st in cp.stages:
            if st.kind == "flow":
                assert st.name in allowed_flows, st
            else:
                assert st.name in allowed_spans, st
        # The chain traverses the server fence spans and hops through the
        # client via the request/release edges (the client span itself
        # holds no time: transit lives on the pmix.rpc.fence edge).
        names = {st.name for st in cp.stages}
        assert "pmix.server.fence" in names
        assert "pmix.rpc.fence" in names
        assert "pmix.release" in names

    def test_fanin_metric_recorded_per_fence(self, run):
        fanin = run.metrics.merged_histogram("pmix.fence.fanin")
        assert fanin.count == 8             # 2 nodes x 4 fences
        assert fanin.percentile(50) == 2    # 2 local ranks per node

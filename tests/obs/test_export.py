"""Chrome trace_event export: schema validity, determinism, flamegraph."""

import json

import pytest

from repro.obs import (
    chrome_trace,
    dumps,
    flame_report,
    validate_chrome_trace,
)
from repro.obs.scenarios import run_scenario
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.obs


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def run(self):
        return run_scenario("fig3-init", nodes=2, ppn=2)

    def test_schema_is_valid(self, run):
        obj = chrome_trace(run.tracer)
        assert validate_chrome_trace(obj) == []

    def test_event_population(self, run):
        obj = chrome_trace(run.tracer)
        phases = {}
        for ev in obj["traceEvents"]:
            phases[ev["ph"]] = phases.get(ev["ph"], 0) + 1
        assert phases["X"] == len(run.tracer.spans)
        assert phases["s"] == len(run.tracer.flows)
        assert phases["f"] == len(run.tracer.flows)   # all complete here
        assert phases["M"] > 0

    def test_span_timestamps_are_microseconds(self, run):
        obj = chrome_trace(run.tracer)
        spans = {s.sid: s for s in run.tracer.spans.values()}
        xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        assert xs
        some = xs[0]
        match = [s for s in spans.values()
                 if abs(s.start * 1e6 - some["ts"]) < 1e-6
                 and s.name == some["name"]]
        assert match

    def test_dumps_is_compact_and_sorted(self, run):
        text = dumps(chrome_trace(run.tracer))
        assert ": " not in text and ", " not in text
        json.loads(text)                    # round-trips

    def test_validator_catches_garbage(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
        bad_x = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "name": "n", "dur": -1}
        ]}
        assert validate_chrome_trace(bad_x) != []


class TestDeterminism:
    def test_two_identical_runs_export_identical_bytes(self):
        a = run_scenario("fig3-init", nodes=2, ppn=2)
        b = run_scenario("fig3-init", nodes=2, ppn=2)
        assert dumps(chrome_trace(a.tracer)) == dumps(chrome_trace(b.tracer))
        assert a.metrics.rows() == b.metrics.rows()
        assert a.t_end == b.t_end

    def test_dup_scenario_deterministic_too(self):
        a = run_scenario("fig4-dup", nodes=2, ppn=1)
        b = run_scenario("fig4-dup", nodes=2, ppn=1)
        assert dumps(chrome_trace(a.tracer)) == dumps(chrome_trace(b.tracer))


class TestDanglingFlows:
    def test_dropped_message_leaves_dangling_start(self):
        run = run_scenario("faults-drop", nodes=2, ppn=1)
        dangling = [f for f in run.tracer.flows.values() if not f.complete]
        assert dangling                      # the dropped grpcomm_up
        assert any(f.name == "rml.grpcomm_up" for f in dangling)
        obj = chrome_trace(run.tracer)
        assert validate_chrome_trace(obj) == []
        starts = sum(1 for e in obj["traceEvents"] if e["ph"] == "s")
        finishes = sum(1 for e in obj["traceEvents"] if e["ph"] == "f")
        assert starts == finishes + len(dangling)

    def test_fault_events_carry_flow_id(self):
        run = run_scenario("faults-drop", nodes=2, ppn=1)
        recs = list(run.tracer.find("faults", "drop_msg"))
        assert recs
        assert all(r.detail.get("flow", 0) > 0 for r in recs)
        assert run.metrics.value("faults.drop_msg") == 1


class TestFlameReport:
    def test_children_render_under_parents(self):
        tr = Tracer()
        a = tr.begin(0.0, "t", "x.root")
        b = tr.begin(0.001, "t", "x.kid")
        tr.end(0.003, b)
        tr.end(0.004, a)
        report = flame_report(tr)
        lines = report.splitlines()
        root_idx = next(i for i, ln in enumerate(lines) if "x.root" in ln)
        kid_idx = next(i for i, ln in enumerate(lines) if "x.kid" in ln)
        assert kid_idx == root_idx + 1
        # self time of root = 4 - 2 (kid's inclusive)
        assert "2.000ms" in lines[root_idx]

    def test_scenario_report_mentions_every_layer(self):
        run = run_scenario("fig3-init", nodes=2, ppn=1)
        report = flame_report(run.tracer)
        for needle in ("ompi.session.init", "pmix.server.group",
                       "prrte.grpcomm.allgather", "simtime.proc.run"):
            assert needle in report

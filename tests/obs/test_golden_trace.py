"""Golden-trace equivalence: fast-path engine vs the compat reference.

The fast scheduler/trampoline (docs/performance.md) must be *invisible*
to every observable output: for each obs scenario the Perfetto export is
byte-identical and the engine executes exactly the same number of
events; for the chaos soak the full result digest (which folds in the
event count) matches per seed.  These tests are the proof that
``Engine(compat=True)`` and the default engine share one behavior.
"""

from __future__ import annotations

import pytest

from repro.obs.export import chrome_trace, dumps
from repro.obs.scenarios import run_scenario, scenario_names
from repro.recovery import soak_run
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.obs


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_export_byte_identical_fast_vs_compat(name):
    fast = run_scenario(name, engine_compat=False)
    ref = run_scenario(name, engine_compat=True)
    assert (fast.cluster.engine.events_executed
            == ref.cluster.engine.events_executed)
    assert dumps(chrome_trace(fast.tracer)) == dumps(chrome_trace(ref.tracer))


@pytest.mark.recovery
@pytest.mark.parametrize("seed", [0, 3, 11])
def test_soak_digest_identical_fast_vs_compat(seed):
    fast = soak_run(seed)
    ref = soak_run(seed, engine_compat=True)
    assert fast["events"] == ref["events"]
    assert fast["digest"] == ref["digest"]


@pytest.mark.recovery
def test_soak_trace_byte_identical_fast_vs_compat():
    def export(compat):
        tracer = Tracer()
        soak_run(2, tracer=tracer, engine_compat=compat)
        return dumps(chrome_trace(tracer))

    assert export(False) == export(True)

"""Structured JSONL event log: emit, read back, rotation."""

import json

import pytest

from repro.obs.events import EventLog, normalize_events

pytestmark = pytest.mark.obs


class TestEmit:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventLog(path, clock=lambda: 123.0) as log:
            log.emit("serve.request.admitted", trace="c-1", scenario="sim")
            log.emit("serve.request.completed", trace="c-1", status="ok")
        events = EventLog.read(path)
        assert [e["event"] for e in events] == [
            "serve.request.admitted", "serve.request.completed"]
        assert events[0]["trace"] == "c-1"
        assert events[0]["ts"] == 123.0

    def test_lines_are_canonical_json(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        with EventLog(path, clock=lambda: 1.0) as log:
            log.emit("x.y", b=2, a=1)
        line = open(path).read().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))

    def test_lazy_open_no_file_until_first_emit(self, tmp_path):
        path = tmp_path / "never.jsonl"
        log = EventLog(str(path))
        assert not path.exists()
        log.close()
        assert not path.exists()

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"event":"a.b","ts":1}\n{"event":"c.d","ts"')
        events = EventLog.read(str(path))
        assert [e["event"] for e in events] == ["a.b"]


class TestRotation:
    def test_rotates_at_max_bytes(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        log = EventLog(path, max_bytes=120, backups=2, clock=lambda: 0.0)
        for i in range(12):
            log.emit("serve.tick", n=i)
        log.close()
        files = sorted(p.name for p in tmp_path.iterdir())
        assert "r.jsonl.1" in files
        # Nothing is lost across active + retained backups, oldest first.
        ns = [e["n"] for e in log.read_all()]
        assert ns == sorted(ns)

    def test_backup_count_is_bounded(self, tmp_path):
        path = str(tmp_path / "b.jsonl")
        log = EventLog(path, max_bytes=40, backups=1, clock=lambda: 0.0)
        for i in range(20):
            log.emit("serve.tick", n=i)
        log.close()
        names = {p.name for p in tmp_path.iterdir()}
        assert names <= {"b.jsonl", "b.jsonl.1"}

    def test_zero_backups_truncates(self, tmp_path):
        path = str(tmp_path / "z.jsonl")
        log = EventLog(path, max_bytes=40, backups=0, clock=lambda: 0.0)
        for i in range(10):
            log.emit("serve.tick", n=i)
        log.close()
        assert {p.name for p in tmp_path.iterdir()} <= {"z.jsonl"}

    def test_bad_limits_raise(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(ValueError):
            EventLog(str(tmp_path / "x"), backups=-1)


class TestNormalize:
    def test_strips_wall_clock_fields(self):
        events = [{"event": "serve.request.completed", "ts": 5.0,
                   "latency_s": 0.25, "trace": "c-1", "status": "ok"}]
        assert normalize_events(events) == [
            {"event": "serve.request.completed", "trace": "c-1",
             "status": "ok"}]

    def test_identical_sequences_compare_equal(self, tmp_path):
        def run(clock_base):
            path = str(tmp_path / f"n{clock_base}.jsonl")
            t = [clock_base]
            with EventLog(path, clock=lambda: t[0]) as log:
                for i in range(3):
                    t[0] += 0.1 * clock_base
                    log.emit("serve.request.admitted", trace=f"c-{i}",
                             latency_s=0.01 * clock_base)
            return EventLog.read(path)

        assert normalize_events(run(1)) == normalize_events(run(9))

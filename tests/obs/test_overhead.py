"""Tracing must not perturb the simulation.

Instrumentation adds no Sleep and no engine events, so a traced run and
an untraced run of the same program are *structurally identical*: same
final simulated time, same executed-event count.  That is a stronger
guarantee than "within noise" — the guard asserts exact equality.
"""

import pytest

from repro.api import SimSpec, make_world
from repro.machine.presets import jupiter
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.obs


def _sessions_main(mpi):
    session = yield from mpi.session_init()
    group = yield from session.group_from_pset("mpi://world")
    comm = yield from mpi.comm_create_from_group(group, "ovh")
    yield from comm.barrier()
    value = yield from comm.allreduce(comm.rank, op=SUM)
    comm.free()
    yield from session.finalize()
    return value


def _measure(tracer):
    world = make_world(spec=SimSpec(
        nprocs=4, machine=jupiter(2), ppn=2,
        config=MpiConfig.sessions_prototype(), tracer=tracer))
    procs = world.spawn_ranks(_sessions_main)
    t_end = world.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    return t_end, world.cluster.engine.events_executed, [p.result for p in procs]


class TestZeroOverhead:
    def test_traced_run_is_structurally_identical(self):
        t_off, ev_off, res_off = _measure(tracer=None)      # NullTracer
        t_on, ev_on, res_on = _measure(tracer=Tracer())
        assert t_on == t_off                 # exact, not approximate
        assert ev_on == ev_off
        assert res_on == res_off

    def test_disabled_default_records_nothing(self):
        world = make_world(spec=SimSpec(
            nprocs=4, machine=jupiter(2), ppn=2,
            config=MpiConfig.sessions_prototype()))
        procs = world.spawn_ranks(_sessions_main)
        world.run()
        for p in procs:
            if p.exception is not None:
                raise p.exception
        tr = world.cluster.engine.tracer
        assert not tr.spans and not tr.flows and not tr.records
        assert world.cluster.metrics.counters == {}
        assert world.cluster.metrics.histograms == {}

"""Metric-name lint: every instrumentation site follows the scheme.

Names are dotted ``layer.noun[.verb]`` paths (docs/observability.md):
2-4 lowercase components, the first being a known layer.  Beyond the
shape, the lint enforces *prefix-freedom*: no metric name may extend
another metric name by more components — exactly the drift this caught
at introduction, where ``serve.requests.submitted`` (a counter of its
own) coexisted with ``serve.requests{status=...}`` (the same fact,
labeled), splitting one metric's identity across two names.

The walk is AST-based over ``src/repro`` and ``tools``: any call of an
``.inc`` / ``.set`` / ``.observe`` method whose first argument is a
string (or f-string) containing a dot is treated as a metric site;
f-string interpolations become ``*`` wildcard components (shape-checked
but exempt from prefix-freedom, which is only decidable for literals).
"""

import ast
import os
import re

import pytest

pytestmark = pytest.mark.obs

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")
TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools")

#: First dotted component must name a known layer.
LAYERS = {
    "serve", "sweep", "bench", "sim", "simtime", "obs", "chaos",
    "rml", "prrte", "pmix", "pml", "ompi", "faults", "recovery",
    "dsim",
}

_COMPONENT = re.compile(r"^[a-z0-9_]+$")
_METHODS = {"inc", "set", "observe"}


def _name_of(node):
    """Metric name of a call's first arg: literal str, or an f-string
    with interpolations collapsed to '*'.  None = not a metric site."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


def collect_metric_sites():
    """(file, line, name) for every .inc/.set/.observe string call."""
    sites = []
    for root in (SRC, TOOLS):
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            if "__pycache__" in dirpath:
                continue
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                with open(path) as fh:
                    tree = ast.parse(fh.read(), filename=path)
                for node in ast.walk(tree):
                    if not (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in _METHODS
                            and node.args):
                        continue
                    name = _name_of(node.args[0])
                    if name is None or "." not in name:
                        continue        # e.g. set() on other objects
                    rel = os.path.relpath(path, os.path.join(SRC, ".."))
                    sites.append((rel, node.lineno, name))
    return sites


def test_sites_were_found():
    """The lint must actually be looking at something."""
    names = {name for _, _, name in collect_metric_sites()}
    assert {"serve.latency", "serve.queue.wait", "rml.messages"} <= names


def test_names_follow_layer_noun_verb_shape():
    bad = []
    for rel, line, name in collect_metric_sites():
        parts = name.split(".")
        if not 2 <= len(parts) <= 4:
            bad.append(f"{rel}:{line}: {name!r} has {len(parts)} components "
                       f"(want 2-4)")
            continue
        if parts[0] not in LAYERS:
            bad.append(f"{rel}:{line}: {name!r} layer {parts[0]!r} not in "
                       f"the known set {sorted(LAYERS)}")
        for part in parts:
            if part != "*" and not _COMPONENT.match(part):
                bad.append(f"{rel}:{line}: {name!r} component {part!r} is "
                           f"not [a-z0-9_]+")
    assert not bad, "\n".join(bad)


def test_names_are_prefix_free():
    """No literal metric name extends another literal metric name.

    A name that is a dotted prefix of another means one fact is being
    recorded under two identities (``serve.requests`` with a status
    label vs a bare ``serve.requests.submitted`` counter) — the exact
    drift that splits dashboards.  Facet with labels, not suffixes.
    """
    literal = sorted({name for _, _, name in collect_metric_sites()
                      if "*" not in name})
    conflicts = []
    for name in literal:
        for other in literal:
            if other != name and other.startswith(name + "."):
                conflicts.append(f"{name!r} is a dotted prefix of {other!r}")
    assert not conflicts, (
        "metric names must be prefix-free (facet with labels, not "
        "suffixes):\n" + "\n".join(conflicts))

"""Several MPI jobs co-hosted on one DVM (the PRRTE model)."""

from repro.api import SimSpec, make_world
from repro.cluster import Cluster
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM


def sessions_main(tag):
    def main(mpi):
        session = yield from mpi.session_init()
        group = yield from session.group_from_pset("mpi://world")
        comm = yield from mpi.comm_create_from_group(group, tag)
        total = yield from comm.allreduce(1, op=SUM)
        pgcid = comm.excid.pgcid
        comm.free()
        yield from session.finalize()
        return (total, pgcid)

    return main


def test_two_jobs_share_one_dvm():
    cluster = Cluster(machine=laptop(num_nodes=2))
    wa = make_world(spec=SimSpec(nprocs=4, ppn=2,
                                 config=MpiConfig.sessions_prototype()),
                    cluster=cluster)
    wb = make_world(spec=SimSpec(nprocs=6, ppn=3,
                                 config=MpiConfig.sessions_prototype()),
                    cluster=cluster)
    assert wa.job.nspace != wb.job.nspace

    pa = wa.spawn_ranks(sessions_main("job-a"))
    pb = wb.spawn_ranks(sessions_main("job-b"))
    cluster.run()
    for p in pa + pb:
        if p.exception:
            raise p.exception

    totals_a = {p.result[0] for p in pa}
    totals_b = {p.result[0] for p in pb}
    assert totals_a == {4} and totals_b == {6}

    # PGCIDs are unique across the whole allocation, not per job —
    # the property the exCID design leans on (§III-B3).
    pgcids_a = {p.result[1] for p in pa}
    pgcids_b = {p.result[1] for p in pb}
    assert len(pgcids_a) == 1 and len(pgcids_b) == 1
    assert pgcids_a != pgcids_b


def test_jobs_do_not_cross_talk():
    """Same-tag communicators in different jobs never match traffic."""
    cluster = Cluster(machine=laptop(num_nodes=1))

    def pingpong(payload):
        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "same-tag")
            if comm.rank == 0:
                yield from comm.send(payload, 1, tag=1)
                got = None
            else:
                got = yield from comm.recv(0, tag=1)
            comm.free()
            yield from session.finalize()
            return got

        return main

    wa = make_world(spec=SimSpec(nprocs=2, ppn=2,
                                 config=MpiConfig.sessions_prototype()),
                    cluster=cluster)
    wb = make_world(spec=SimSpec(nprocs=2, ppn=2,
                                 config=MpiConfig.sessions_prototype()),
                    cluster=cluster)
    pa = wa.spawn_ranks(pingpong("from-A"))
    pb = wb.spawn_ranks(pingpong("from-B"))
    cluster.run()
    for p in pa + pb:
        if p.exception:
            raise p.exception
    assert pa[1].result == "from-A"
    assert pb[1].result == "from-B"


def test_machine_and_cluster_conflict_rejected():
    import pytest

    cluster = Cluster(machine=laptop(num_nodes=1))
    with pytest.raises(ValueError):
        make_world(spec=SimSpec(nprocs=2, machine=laptop(num_nodes=2)),
                   cluster=cluster)

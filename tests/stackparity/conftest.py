"""Shared machinery for the differential stack-parity suite.

Every test here runs the same workload twice — once on the optimized
default engine, once on ``Engine(compat=True)``, the pure-heap reference
scheduler — and asserts that everything observable agrees *byte for
byte*: Perfetto/Chrome trace exports, logical event counts, metric
snapshots, per-phase span breakdowns, and (for the recovery soak) the
canonical result digest.  Any fast-path optimization that changes
scheduling order, timestamps, counters, or payload routing fails here
before it can corrupt a benchmark result.
"""

from __future__ import annotations

from typing import Tuple

import pytest

from repro.obs import export
from repro.obs.scenarios import ObsRun, run_scenario


@pytest.fixture
def run_pair():
    """Factory: run one scenario fast and compat, return both ObsRuns."""

    def _run(name: str, **kwargs) -> Tuple[ObsRun, ObsRun]:
        fast = run_scenario(name, engine_compat=False, **kwargs)
        compat = run_scenario(name, engine_compat=True, **kwargs)
        return fast, compat

    return _run


def trace_bytes(run: ObsRun) -> str:
    """Canonical serialized Chrome-trace export for one run."""
    return export.dumps(export.chrome_trace(run.tracer))


def phase_breakdown(run: ObsRun):
    """Per-phase (span-path) inclusive-time breakdown.

    Aggregates closed spans by their full ancestry path — the same
    decomposition ``obs.export.flame_report`` renders — so a fast-path
    change that shifts time between stack layers (pmix vs prrte vs ompi)
    is caught even if totals happen to coincide.
    """
    tracer = run.tracer
    agg = {}
    for span in tracer.spans.values():
        if span.end is None:
            continue
        names = []
        s = span
        while s is not None:
            names.append(s.name)
            s = tracer.spans.get(s.parent)
        path = tuple(reversed(names))
        slot = agg.setdefault(path, [0.0, 0])
        slot[0] += span.duration
        slot[1] += 1
    return {path: (total, count) for path, (total, count) in sorted(agg.items())}

"""Differential parity: every registered obs scenario, fast vs compat.

The default-size sweep (2 nodes x 2 ppn) is the tier-1 smoke subset;
the larger sweeps are marked ``slow`` and run in the full matrix.
"""

from __future__ import annotations

import pytest

from repro.obs.scenarios import scenario_names

from .conftest import phase_breakdown, trace_bytes

pytestmark = pytest.mark.stackparity

ALL_SCENARIOS = scenario_names()


def assert_parity(fast, compat):
    """The full byte-identical contract between the two engines."""
    # Logical event counts: batching must charge compensation exactly.
    ev_fast = fast.cluster.engine.events_executed
    ev_compat = compat.cluster.engine.events_executed
    assert ev_fast == ev_compat, (
        f"event count diverged: fast={ev_fast} compat={ev_compat}"
    )
    # Simulated end time to the last bit.
    assert fast.t_end == compat.t_end
    # Byte-identical Perfetto/Chrome export — span names, timestamps,
    # flow edges, args, track layout, everything.
    assert trace_bytes(fast) == trace_bytes(compat)
    # Per-phase breakdown: inclusive time per span ancestry path.
    assert phase_breakdown(fast) == phase_breakdown(compat)
    # Metrics snapshot (counters/gauges/histograms incl. pml/rml stats).
    assert fast.metrics.to_dict() == compat.metrics.to_dict()


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_scenario_parity_smoke(run_pair, name):
    """Tier-1 smoke: default-size runs must agree byte-for-byte."""
    fast, compat = run_pair(name)
    assert_parity(fast, compat)
    # Sanity: the runs actually did something.
    assert fast.cluster.engine.events_executed > 0
    assert fast.tracer.spans


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_SCENARIOS)
@pytest.mark.parametrize("nodes,ppn", [(4, 4), (8, 8)])
def test_scenario_parity_scaled(run_pair, name, nodes, ppn):
    """Full matrix: the same contract at larger world sizes."""
    fast, compat = run_pair(name, nodes=nodes, ppn=ppn)
    assert_parity(fast, compat)


def test_registry_covers_known_scenarios():
    """The sweep must not silently shrink: these six are load-bearing
    (new scenarios are picked up automatically via scenario_names)."""
    for required in ("fig3-init", "fig3-init-world", "fig4-dup",
                     "fence-chain", "pingpong", "faults-drop"):
        assert required in ALL_SCENARIOS

"""Differential parity for the recovery chaos soak (fault-matrix runs).

``recovery.soak_run`` already promises an engine-independent digest;
this suite holds it to that promise on every field of the result record
*and* on the byte-identical trace export, fast vs compat, with the full
fault stack active (lossy RML links, node kills, grpcomm restarts,
shrink/agree consensus).
"""

from __future__ import annotations

import pytest

from repro.obs import export
from repro.recovery import soak_run
from repro.simtime.trace import Tracer

pytestmark = [pytest.mark.stackparity, pytest.mark.recovery]


def _pair(seed: int, **kwargs):
    fast = soak_run(seed, engine_compat=False, **kwargs)
    compat = soak_run(seed, engine_compat=True, **kwargs)
    return fast, compat


def test_soak_record_parity_smoke():
    """Tier-1 smoke: one seed, full record equality field by field."""
    fast, compat = _pair(0)
    assert fast["ok"] and compat["ok"]
    assert fast["digest"] == compat["digest"]
    # The digest covers the record, but compare directly too so a
    # mismatch names the diverging field instead of two hex strings.
    assert fast == compat


def test_soak_trace_parity_smoke():
    """Tier-1 smoke: byte-identical trace export under faults."""
    tr_fast, tr_compat = Tracer(), Tracer()
    fast = soak_run(1, engine_compat=False, tracer=tr_fast)
    compat = soak_run(1, engine_compat=True, tracer=tr_compat)
    assert fast["digest"] == compat["digest"]
    assert fast["events"] == compat["events"]
    assert (export.dumps(export.chrome_trace(tr_fast))
            == export.dumps(export.chrome_trace(tr_compat)))


@pytest.mark.slow
@pytest.mark.parametrize("seed", [2, 3, 4, 5])
def test_soak_record_parity_seeds(seed):
    """Full matrix: more seeds, different fault schedules each."""
    fast, compat = _pair(seed)
    assert fast == compat


@pytest.mark.slow
@pytest.mark.parametrize("num_nodes,num_ranks", [(8, 16), (8, 32)])
def test_soak_record_parity_scaled(num_nodes, num_ranks):
    """Full matrix: the parity contract at larger soak sizes."""
    fast, compat = _pair(0, num_nodes=num_nodes, num_ranks=num_ranks)
    assert fast == compat

"""The parallel sweep executor and its on-disk cache (repro.sweep)."""

from __future__ import annotations

import json

from repro.bench.perf import comm_dup
from repro.sweep import (
    SweepCache,
    SweepPoint,
    cache_key,
    run_sweep,
    source_digest,
)


def test_source_digest_is_stable_and_hex():
    assert source_digest() == source_digest()
    assert len(source_digest()) == 64
    int(source_digest(), 16)    # hex


def test_cache_key_sensitivity():
    base = cache_key("scenario", {"x": 1})
    assert base == cache_key("scenario", {"x": 1})
    assert base != cache_key("scenario", {"x": 2})
    assert base != cache_key("other", {"x": 1})


def test_cache_key_param_order_insensitive():
    assert cache_key("s", {"a": 1, "b": 2}) == cache_key("s", {"b": 2, "a": 1})


def test_cache_roundtrip_and_accounting(tmp_path):
    cache = SweepCache(str(tmp_path))
    key = cache_key("s", {"p": 1})
    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put(key, {"value": [1, 2]})
    assert cache.get(key) == {"value": [1, 2]}
    assert (cache.hits, cache.misses) == (1, 1)
    assert "1 hit(s), 1 miss(es)" in cache.report()


def test_cache_tolerates_corrupt_entries(tmp_path):
    cache = SweepCache(str(tmp_path))
    key = cache_key("s", {})
    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.get(key) is None    # treated as a miss, recomputed
    # ... and quarantined, so it cannot fail again every run.
    assert not (tmp_path / f"{key}.json").exists()
    assert (tmp_path / f"{key}.json.corrupt").exists()
    assert cache.corrupt == 1
    assert "1 corrupt" in cache.report()


def _points(deltas=(5, 10, 15, 20)):
    return [
        SweepPoint("comm-dup", comm_dup,
                   {"compat": False, "procs": 2, "dups": d})
        for d in deltas
    ]


def test_run_sweep_serial_parallel_and_cached_agree(tmp_path):
    points = _points()
    serial = run_sweep(points, jobs=1)
    assert all(isinstance(ev, int) and ev > 0 for ev in serial)
    assert run_sweep(points, jobs=2) == serial

    cache = SweepCache(str(tmp_path))
    assert run_sweep(points, jobs=2, cache=cache) == serial
    assert (cache.hits, cache.misses) == (0, len(points))
    assert run_sweep(points, jobs=1, cache=cache) == serial
    assert (cache.hits, cache.misses) == (len(points), len(points))


def test_run_sweep_preserves_input_order_with_partial_hits(tmp_path):
    points = _points()
    cache = SweepCache(str(tmp_path))
    serial = run_sweep(points, jobs=1, cache=cache)
    # Evict the middle entries: the next run mixes hits and computes.
    for pt in points[1:3]:
        (tmp_path / f"{pt.key()}.json").unlink()
    mixed_cache = SweepCache(str(tmp_path))
    assert run_sweep(points, jobs=2, cache=mixed_cache) == serial
    assert (mixed_cache.hits, mixed_cache.misses) == (2, 2)


def test_sweep_point_key_matches_cache_key():
    pt = SweepPoint("s", comm_dup, {"compat": True})
    assert pt.key() == cache_key("s", {"compat": True})


def test_run_sweep_with_telemetry_and_ledger(tmp_path):
    """Observed sweeps record spans and ledger rows without changing
    the results (the telemetry zero-perturbation contract)."""
    from repro.obs import LiveTelemetry, RunLedger

    points = _points()
    plain = run_sweep(points, jobs=1)

    tel = LiveTelemetry()
    with RunLedger(str(tmp_path / "ledger.sqlite")) as ledger:
        cache = SweepCache(str(tmp_path / "cache"))
        observed = run_sweep(points, jobs=1, cache=cache,
                             telemetry=tel, ledger=ledger)
        assert observed == plain
        spans = [s for s in tel.tracer.spans.values()
                 if s.name == "sweep.task"]
        assert sorted(s.attrs["index"] for s in spans) == [0, 1, 2, 3]
        assert all(s.track == "sweep:task" for s in spans)
        rows = ledger.query(kind="sweep")
        assert len(rows) == 4
        assert all(r["cached"] is False and r["wall_s"] >= 0 for r in rows)
        assert [r["digest"] for r in rows] == [pt.key() for pt in points]

        # Re-run over the warm cache: hits show up as instants + rows.
        assert run_sweep(points, jobs=1, cache=cache,
                         telemetry=tel, ledger=ledger) == plain
        hits = [i for i in tel.tracer.instants if i.name == "sweep.cache.hit"]
        assert len(hits) == 4
        cached_rows = [r for r in ledger.query(kind="sweep") if r["cached"]]
        assert len(cached_rows) == 4


def test_run_sweep_parallel_telemetry_matches_serial_results(tmp_path):
    from repro.obs import LiveTelemetry, RunLedger

    points = _points()
    plain = run_sweep(points, jobs=1)
    tel = LiveTelemetry()
    with RunLedger(str(tmp_path / "ledger.sqlite")) as ledger:
        assert run_sweep(points, jobs=2, telemetry=tel,
                         ledger=ledger) == plain
        done = [i for i in tel.tracer.instants if i.name == "sweep.task.done"]
        assert sorted(i.attrs["index"] for i in done) == [0, 1, 2, 3]
        assert ledger.count() == 4


def test_run_sweep_disabled_telemetry_records_nothing():
    from repro.obs import LiveTelemetry

    tel = LiveTelemetry(enabled=False)
    assert run_sweep(_points(), jobs=1, telemetry=tel) \
        == run_sweep(_points(), jobs=1)
    assert tel.tracer.spans == {} and tel.tracer.instants == []


def test_cached_payloads_are_canonical_checksummed_json(tmp_path):
    from repro.sweep import ENVELOPE_KEY, ENVELOPE_VERSION, result_digest

    cache = SweepCache(str(tmp_path))
    key = cache_key("s", {})
    cache.put(key, {"b": 2, "a": 1})
    raw = (tmp_path / f"{key}.json").read_text()
    assert raw == json.dumps({ENVELOPE_KEY: ENVELOPE_VERSION,
                              "result": {"a": 1, "b": 2},
                              "sha256": result_digest({"a": 1, "b": 2})},
                             sort_keys=True)

"""Unit tests for PRRTE: RML, DVM, psets, launcher, grpcomm."""

import pytest

from repro.cluster import Cluster
from repro.machine.presets import laptop
from repro.pmix.types import PmixProc
from repro.prrte.launch import JobSpec
from repro.prrte.psets import PsetRegistry
from repro.prrte.rml import RmlMessage


class TestRml:
    def test_message_delivered_with_delay(self):
        cluster = Cluster(machine=laptop(num_nodes=2))
        seen = []
        cluster.dvm.daemons[1].add_handler("test", lambda msg: seen.append(cluster.now))
        cluster.dvm.daemons[0].send(1, "test", {"x": 1})
        cluster.run()
        assert len(seen) == 1
        assert seen[0] > 0

    def test_loopback_faster_than_remote(self):
        cluster = Cluster(machine=laptop(num_nodes=2))
        times = {}
        cluster.dvm.daemons[0].add_handler("loop", lambda m: times.setdefault("loop", cluster.now))
        cluster.dvm.daemons[1].add_handler("far", lambda m: times.setdefault("far", cluster.now))
        cluster.dvm.daemons[0].send(0, "loop", {})
        cluster.run()
        t_loop = times["loop"]
        cluster.dvm.daemons[0].send(1, "far", {})
        cluster.run()
        assert times["far"] - t_loop > 0
        assert t_loop < times["far"] - t_loop  # loopback cheaper than remote leg

    def test_daemon_serializes_arrivals(self):
        """Messages from many senders to one daemon serialize on its CPU."""
        cluster = Cluster(machine=laptop(num_nodes=8))
        arrivals = []
        cluster.dvm.daemons[0].add_handler("fan", lambda m: arrivals.append(cluster.now))
        for src in range(1, 8):
            cluster.dvm.daemons[src].send(0, "fan", {})
        cluster.run()
        assert len(arrivals) == 7
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        proc = cluster.dvm.rml.process_cost
        assert all(g >= proc * 0.99 for g in gaps), gaps

    def test_unknown_destination_rejected(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        with pytest.raises(KeyError):
            cluster.dvm.rml.send(RmlMessage(src=0, dst=5, tag="x"))

    def test_unknown_tag_raises(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        cluster.dvm.daemons[0].send(0, "no-such-tag", {})
        with pytest.raises(KeyError):
            cluster.run()

    def test_duplicate_handler_rejected(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        cluster.dvm.daemons[0].add_handler("t", lambda m: None)
        with pytest.raises(ValueError):
            cluster.dvm.daemons[0].add_handler("t", lambda m: None)

    def test_byte_accounting(self):
        cluster = Cluster(machine=laptop(num_nodes=2))
        cluster.dvm.daemons[1].add_handler("t", lambda m: None)
        before = cluster.dvm.rml.bytes_sent
        cluster.dvm.daemons[0].send(1, "t", {"payload": "x" * 100})
        assert cluster.dvm.rml.bytes_sent >= before + 100
        cluster.run()


class TestDvm:
    def test_one_daemon_per_node(self):
        cluster = Cluster(machine=laptop(num_nodes=5))
        assert len(cluster.dvm.daemons) == 5
        assert [d.node for d in cluster.dvm.daemons] == list(range(5))

    def test_pgcids_unique_and_nonzero(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        ids = [cluster.dvm.allocate_pgcid() for _ in range(100)]
        assert len(set(ids)) == 100
        assert all(i >= 1 for i in ids)

    def test_job_names_unique(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        assert cluster.dvm.next_job_name() != cluster.dvm.next_job_name()

    def test_boot_time_grows_with_nodes(self):
        small = Cluster(machine=laptop(num_nodes=2)).dvm.boot_time
        large = Cluster(machine=laptop(num_nodes=32)).dvm.boot_time
        assert large > small


class TestPsets:
    def test_define_and_lookup(self):
        reg = PsetRegistry()
        members = [PmixProc("j", 0), PmixProc("j", 1)]
        reg.define("app/x", members)
        assert reg.members("app/x") == tuple(members)
        assert "app/x" in reg
        assert reg.count() == 1

    def test_names_sorted(self):
        reg = PsetRegistry()
        reg.define("b", [PmixProc("j", 0)])
        reg.define("a", [PmixProc("j", 1)])
        assert reg.names() == ["a", "b"]

    def test_redefine_rejected(self):
        reg = PsetRegistry()
        reg.define("x", [PmixProc("j", 0)])
        with pytest.raises(ValueError):
            reg.define("x", [PmixProc("j", 1)])

    def test_duplicates_rejected(self):
        reg = PsetRegistry()
        with pytest.raises(ValueError):
            reg.define("x", [PmixProc("j", 0), PmixProc("j", 0)])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            PsetRegistry().define("", [])

    def test_undefine(self):
        reg = PsetRegistry()
        reg.define("x", [PmixProc("j", 0)])
        reg.undefine("x")
        assert reg.members("x") is None
        reg.undefine("x")  # idempotent


class TestLauncher:
    def test_launch_basic(self):
        cluster = Cluster(machine=laptop(num_nodes=2))
        job = cluster.launch(6, ppn=3)
        assert job.num_ranks == 6
        assert job.topology.num_nodes == 2
        assert len(job.clients) == 6

    def test_proc_identity_interned(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        job = cluster.launch(4, ppn=4)
        assert job.proc(2) is job.proc(2)
        assert job.all_procs[2] is job.proc(2)

    def test_launch_defines_psets(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        job = cluster.launch(4, ppn=4, psets={"custom": [1, 3]})
        assert cluster.psets.members("custom") == (job.proc(1), job.proc(3))

    def test_oversubscription_rejected(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        with pytest.raises(ValueError):
            cluster.launcher.launch(JobSpec(num_ranks=64, ppn=4))

    def test_two_jobs_distinct_namespaces(self):
        cluster = Cluster(machine=laptop(num_nodes=1))
        a = cluster.launch(2, ppn=2)
        b = cluster.launch(2, ppn=2)
        assert a.nspace != b.nspace

    def test_job_map_replicated_to_all_servers(self):
        cluster = Cluster(machine=laptop(num_nodes=3))
        job = cluster.launch(4, ppn=2)  # uses only nodes 0-1
        for server in cluster.servers:
            assert server.node_of(job.proc(3)) == 1

"""Two runs of the same experiment produce bit-identical results —
the simulation core's central promise (docs/architecture.md §1)."""

from repro.apps.twomesh.driver import TwoMeshProblem, run_twomesh
from repro.bench.hpcc import hpcc_ring_latency
from repro.bench.osu import osu_init, osu_latency, osu_mbw_mr
from repro.machine.presets import laptop


def test_osu_init_deterministic():
    a = osu_init(2, 4, "sessions", machine_factory=laptop)
    b = osu_init(2, 4, "sessions", machine_factory=laptop)
    assert (a.total, a.handle, a.comm_construct) == (b.total, b.handle, b.comm_construct)


def test_osu_latency_deterministic():
    sizes = (8, 4096)
    assert osu_latency("world", sizes=sizes, machine=laptop(1)) == \
        osu_latency("world", sizes=sizes, machine=laptop(1))


def test_osu_mbw_deterministic():
    kw = dict(pairs=2, sizes=(64,), machine=laptop(1), window=4, iterations=2)
    assert osu_mbw_mr("sessions", **kw) == osu_mbw_mr("sessions", **kw)


def test_hpcc_random_ring_deterministic():
    kw = dict(ordering="random", iterations=3, machine_factory=laptop, seed=7)
    assert hpcc_ring_latency(2, 2, "world", **kw) == hpcc_ring_latency(2, 2, "world", **kw)


def test_faulted_run_deterministic():
    """Fault injection preserves the bit-determinism promise: two runs
    with the same seeded FaultPlan agree on outcomes, liveness, final
    time, and the serialized fault trace (docs/faults.md)."""
    from tests.properties.test_fault_properties import run_chaos

    assert run_chaos(13, trace=True) == run_chaos(13, trace=True)


def test_twomesh_deterministic():
    p = TwoMeshProblem(
        name="det", ranks=8, ppn=4, couplings=1, l0_steps=1, l1_steps=1,
        l0_compute=50e-6, l1_compute=1e-3, halo_bytes=512, workers_per_node=1,
    )
    assert run_twomesh(p, use_sessions=True) == run_twomesh(p, use_sessions=True)

"""Unit tests for rank placement."""

import pytest

from repro.machine.topology import Topology


class TestBasics:
    def test_block_mapping(self):
        topo = Topology(num_ranks=8, ppn=4)
        assert topo.num_nodes == 2
        assert [topo.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_local_ranks(self):
        topo = Topology(num_ranks=8, ppn=4)
        assert [topo.local_rank_of(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_partial_last_node(self):
        topo = Topology(num_ranks=10, ppn=4)
        assert topo.num_nodes == 3
        assert topo.ranks_on_node(2) == [8, 9]

    def test_from_nodes(self):
        topo = Topology.from_nodes(3, 28)
        assert topo.num_ranks == 84
        assert topo.num_nodes == 3

    def test_same_node(self):
        topo = Topology(num_ranks=8, ppn=4)
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)

    def test_node_leader(self):
        topo = Topology(num_ranks=8, ppn=4)
        assert topo.node_leader(0) == 0
        assert topo.node_leader(1) == 4

    def test_nodes_of(self):
        topo = Topology(num_ranks=12, ppn=4)
        assert topo.nodes_of([0, 5, 11]) == [0, 1, 2]
        assert topo.nodes_of([1, 2]) == [0]


class TestValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Topology(0, 4)

    def test_zero_ppn_rejected(self):
        with pytest.raises(ValueError):
            Topology(4, 0)

    def test_rank_out_of_range(self):
        topo = Topology(4, 2)
        with pytest.raises(ValueError):
            topo.node_of(4)
        with pytest.raises(ValueError):
            topo.node_of(-1)

    def test_node_out_of_range(self):
        topo = Topology(4, 2)
        with pytest.raises(ValueError):
            topo.ranks_on_node(2)

    def test_single_rank(self):
        topo = Topology(1, 1)
        assert topo.num_nodes == 1
        assert topo.ranks_on_node(0) == [0]

"""Unit tests for the machine cost model and presets."""

import dataclasses

import pytest

from repro.machine.model import MachineModel
from repro.machine.presets import jupiter, laptop, trinity


class TestCosts:
    def test_wire_time_intra_vs_inter(self):
        m = MachineModel()
        assert m.wire_time(True, 0) == m.intra_node_latency
        assert m.wire_time(False, 0) == m.inter_node_latency
        assert m.wire_time(False, 0) > m.wire_time(True, 0)

    def test_wire_time_scales_with_bytes(self):
        m = MachineModel()
        small = m.wire_time(False, 8)
        big = m.wire_time(False, 1 << 20)
        assert big > small
        assert big - m.inter_node_latency == pytest.approx((1 << 20) / m.inter_node_bandwidth)

    def test_nfs_load_monotonic_in_contention(self):
        m = MachineModel()
        times = [m.nfs_load_time(n) for n in (1, 8, 64, 512)]
        assert times == sorted(times)
        assert times[0] >= m.nfs_base_load

    def test_nfs_load_handles_zero_procs(self):
        m = MachineModel()
        assert m.nfs_load_time(0) == m.nfs_load_time(1)

    def test_with_nodes(self):
        m = MachineModel(num_nodes=1)
        m2 = m.with_nodes(16)
        assert m2.num_nodes == 16
        assert m.num_nodes == 1  # frozen original untouched

    def test_replace(self):
        m = MachineModel()
        m2 = m.replace(eager_limit=1)
        assert m2.eager_limit == 1
        assert m.eager_limit != 1

    def test_frozen(self):
        m = MachineModel()
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.num_nodes = 5

    def test_describe_keys(self):
        d = MachineModel(name="x").describe()
        assert d["Model"] == "x"
        assert "Inter latency" in d


class TestPresets:
    def test_table1_core_counts(self):
        assert trinity(1).cores_per_node == 32   # 2x 16-core E5-2698 v3
        assert jupiter(1).cores_per_node == 28   # 2x 14-core E5-2690 v4

    def test_preset_node_scaling(self):
        assert trinity(7).num_nodes == 7

    def test_laptop_has_cheap_startup(self):
        assert laptop().nfs_base_load < trinity(1).nfs_base_load / 10

    def test_cold_costs_exceed_warm(self):
        for m in (trinity(1), jupiter(1), laptop()):
            assert m.group_client_cost_cold > m.group_client_cost_warm
            assert m.fence_client_cost_cold > m.fence_client_cost_warm

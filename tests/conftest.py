"""Shared fixtures and helpers for the test suite.

Marker map (registered in pyproject.toml ``[tool.pytest.ini_options]``):

* ``faults``      — fault-injection matrix tests.
* ``obs``         — observability/tracing tests.
* ``recovery``    — fault-recovery tests incl. the chaos soak.
* ``bench``       — wall-clock performance benches; not part of tier-1.
* ``serve``       — serving-layer tests incl. the loadgen smoke.
* ``chaos``       — operational fault injection (tests/chaos/): the
  ``repro.chaos`` plan model, cache corruption/quarantine, client
  reconnect-and-resubmit, the circuit breaker, and sweep crash
  isolation.  The default-sized subset runs in tier-1 as the chaos
  smoke; ``tools/run_chaos.py`` is the full soak.
* ``dsim``        — the partitioned-simulation suite (tests/dsim/):
  running one world across N forked worker partitions (``repro.dsim``)
  must be bit-equivalent to one process — results, traces (canonically
  normalized), metrics, soak digests — including under partition-safe
  fault plans.  The small-scale subset runs in tier-1 as the dsim
  smoke; the 4-partition and multi-seed sweeps are ``slow``.
* ``fleet``       — the sharded-fleet suite (tests/serve/test_fleet.py):
  the consistent-hash ring's movement bounds, fleet-vs-single-server
  byte identity, fleet-wide single-flight coalescing, shard-death
  failover to the ring successor, and the two-tier result store's hit
  accounting.  The small-scale subset runs in tier-1 as the fleet
  smoke; ``python -m repro bench --fleet`` is the scaling benchmark.
* ``stackparity`` — the differential fast-vs-compat parity suite
  (tests/stackparity/): every registered scenario and the recovery soak
  run on both the optimized engine and ``Engine(compat=True)``, and the
  exports must agree byte-for-byte.  The default-sized subset runs in
  tier-1 as the parity smoke; ``pytest -m stackparity`` runs everything
  not otherwise deselected.
* ``slow``        — large-scale runs (1k+ simulated ranks, bigger parity
  sweeps).  Excluded from tier-1 by ``addopts = -m "not slow"``; opt in
  with ``pytest -m slow`` (or ``-m ""`` to run the whole matrix).
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.machine.presets import laptop


def run_procs(cluster: Cluster, *gens, names=None):
    """Spawn generators as simulated processes, run to quiescence, and
    return their results in spawn order."""
    procs = []
    for i, gen in enumerate(gens):
        name = names[i] if names else f"proc{i}"
        procs.append(cluster.spawn(gen, name))
    for p in procs:
        p.defuse()
    cluster.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    return [p.result for p in procs]


@pytest.fixture
def small_cluster():
    """4-node laptop-class cluster (fast startup constants)."""
    return Cluster(machine=laptop(num_nodes=4))


@pytest.fixture
def one_node_cluster():
    return Cluster(machine=laptop(num_nodes=1))

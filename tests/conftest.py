"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.machine.presets import laptop


def run_procs(cluster: Cluster, *gens, names=None):
    """Spawn generators as simulated processes, run to quiescence, and
    return their results in spawn order."""
    procs = []
    for i, gen in enumerate(gens):
        name = names[i] if names else f"proc{i}"
        procs.append(cluster.spawn(gen, name))
    for p in procs:
        p.defuse()
    cluster.run()
    for p in procs:
        if p.exception is not None:
            raise p.exception
    return [p.result for p in procs]


@pytest.fixture
def small_cluster():
    """4-node laptop-class cluster (fast startup constants)."""
    return Cluster(machine=laptop(num_nodes=4))


@pytest.fixture
def one_node_cluster():
    return Cluster(machine=laptop(num_nodes=1))

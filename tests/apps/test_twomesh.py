"""2MESH mini-app tests: mesh decomposition and end-to-end runs."""

import pytest

from repro.apps.twomesh.driver import PROBLEMS, TwoMeshProblem, run_twomesh
from repro.apps.twomesh.l1 import poll_interference
from repro.apps.twomesh.mesh import CartGrid, dims_create
from repro.machine.presets import trinity


class TestDimsCreate:
    @pytest.mark.parametrize("n", [1, 2, 4, 6, 12, 64, 97, 256, 1024])
    def test_product_preserved(self, n):
        dims = dims_create(n, 2)
        assert dims[0] * dims[1] == n

    def test_balanced(self):
        assert dims_create(64, 2) == [8, 8]
        assert dims_create(12, 2) == [4, 3]

    def test_prime(self):
        assert dims_create(7, 2) == [7, 1]

    def test_three_dims(self):
        dims = dims_create(24, 3)
        assert len(dims) == 3
        assert dims[0] * dims[1] * dims[2] == 24

    def test_invalid(self):
        with pytest.raises(ValueError):
            dims_create(0)


class TestCartGrid:
    def test_coords_roundtrip(self):
        grid = CartGrid(12)
        for r in range(12):
            y, x = grid.coords(r)
            assert grid.rank_at(y, x) == r

    def test_periodic_neighbors(self):
        grid = CartGrid(16)  # 4x4
        n = grid.neighbors(0)
        assert len(n) == 4
        assert all(0 <= x < 16 for x in n)

    def test_neighbor_symmetry(self):
        grid = CartGrid(16)
        for r in range(16):
            for n in grid.neighbors(r):
                assert r in grid.neighbors(n)

    def test_nonperiodic_corner(self):
        grid = CartGrid(16, periodic=False)
        assert len(grid.neighbors(0)) == 2

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            CartGrid(12, dims=(5, 2))

    def test_tiny_grid(self):
        grid = CartGrid(2)
        assert grid.neighbors(0) == [1]


class TestProblems:
    def test_paper_sizes(self):
        assert PROBLEMS["P1"].ranks == 256
        assert PROBLEMS["P2"].ranks == 256
        assert PROBLEMS["P3"].ranks == 1024
        for p in PROBLEMS.values():
            assert p.ppn == 32  # fully subscribing Trinity's 32-core nodes

    def test_poll_interference_shape(self):
        m = trinity(1)
        assert poll_interference(m, 0) == 0.0
        assert poll_interference(m, 30) > poll_interference(m, 10)
        assert poll_interference(m, 30) < 0.05  # small by construction


def small_problem(**overrides):
    base = dict(
        name="tiny", ranks=16, ppn=8, couplings=2, l0_steps=2, l1_steps=1,
        l0_compute=100e-6, l1_compute=4.0e-3, halo_bytes=1024, workers_per_node=2,
    )
    base.update(overrides)
    return TwoMeshProblem(**base)


class TestEndToEnd:
    def test_baseline_runs(self):
        t = run_twomesh(small_problem(), use_sessions=False)
        assert t > 0

    def test_sessions_overhead_small_and_positive(self):
        p = small_problem()
        base = run_twomesh(p, use_sessions=False)
        sess = run_twomesh(p, use_sessions=True)
        assert 1.0 < sess / base < 1.10

    def test_more_couplings_take_longer(self):
        fast = run_twomesh(small_problem(couplings=1), use_sessions=False)
        slow = run_twomesh(small_problem(couplings=4), use_sessions=False)
        assert slow > 2 * fast

    def test_deterministic(self):
        p = small_problem()
        assert run_twomesh(p, use_sessions=True) == run_twomesh(p, use_sessions=True)

"""Persistent requests, Cartesian topologies, errhandler dispatch,
MPI_Wtime, and the PML exCID-fallback rule."""

import pytest

from repro.ompi.constants import PROC_NULL, SUM
from repro.ompi.errors import ERRORS_RETURN, MPIAbort, MPIErrComm, MPIErrRequest, MPIError
from repro.ompi.persistent import startall
from repro.ompi.persistent import waitall as pwaitall
from repro.ompi.topo import CartTopology
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


class TestPersistentRequests:
    def test_restartable_halo_pattern(self, mpi_run, program):
        def body(mpi, comm):
            peer = 1 - comm.rank
            box = {"value": None}
            psend = comm.send_init(None, peer, tag=1, nbytes=64)
            precv = comm.recv_init(source=peer, tag=1)
            received = []
            for step in range(5):
                psend.obj = f"step{step}-from{comm.rank}"
                yield from startall([precv, psend])
                yield from pwaitall([precv, psend])
                received.append(precv.payload)
            psend.free()
            precv.free()
            return received

        results = mpi_run(2, program(body))
        assert results[0] == [f"step{i}-from1" for i in range(5)]
        assert results[1] == [f"step{i}-from0" for i in range(5)]
        assert len(results[0]) == 5

    def test_double_start_rejected(self, mpi_run, program):
        def body(mpi, comm):
            precv = comm.recv_init(source=0, tag=1)
            yield from precv.start()
            try:
                yield from precv.start()
            except MPIErrRequest:
                result = "rejected"
            else:
                result = "accepted"
            if comm.rank == 0:
                yield from comm.send(None, 1, tag=1, nbytes=0)
            if comm.rank == 1:
                yield from precv.wait()
            # rank 0's own recv never matches; cancel by leaking (freed
            # comms would complain, so complete it):
            if comm.rank == 0:
                yield from comm.send(None, 0, tag=1, nbytes=0)
                yield from precv.wait()
            precv.free()
            return result

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_wait_before_start_rejected(self, mpi_run, program):
        def body(mpi, comm):
            preq = comm.recv_init(source=0, tag=1)
            try:
                yield from preq.wait()
            except MPIErrRequest:
                return "rejected"
            return "accepted"

        assert mpi_run(1, program(body), nodes=1) == ["rejected"]

    def test_free_while_active_rejected(self, mpi_run, program):
        def body(mpi, comm):
            preq = comm.recv_init(source=0, tag=1)
            yield from preq.start()
            try:
                preq.free()
            except MPIErrRequest:
                result = "rejected"
            else:
                result = "accepted"
            yield from comm.send(None, comm.rank, tag=1, nbytes=0)  # self-send
            yield from preq.wait()
            preq.free()
            return result

        assert mpi_run(1, program(body), nodes=1) == ["rejected"]


class TestCartTopology:
    def test_coords_rank_roundtrip(self):
        topo = CartTopology((3, 4), (True, True))
        for r in range(12):
            assert topo.rank(topo.coords(r)) == r

    def test_row_major_like_mpi(self):
        topo = CartTopology((2, 3), (False, False))
        assert topo.coords(0) == (0, 0)
        assert topo.coords(1) == (0, 1)
        assert topo.coords(3) == (1, 0)

    def test_shift_periodic_wraps(self):
        topo = CartTopology((4,), (True,))
        src, dest = topo.shift(0, 0, 1)
        assert (src, dest) == (3, 1)

    def test_shift_open_edge_proc_null(self):
        topo = CartTopology((4,), (False,))
        src, dest = topo.shift(0, 0, 1)
        assert src == PROC_NULL
        assert dest == 1

    def test_neighbors_dedup(self):
        topo = CartTopology((2, 2), (True, True))
        assert sorted(topo.neighbors(0)) == [1, 2]

    def test_cart_create_and_exchange(self, mpi_run, program):
        def body(mpi, comm):
            cart = yield from comm.create_cart(dims=(2, 3))
            me = cart.cart.coords(cart.rank)
            _src, east = cart.cart.shift(cart.rank, 1, 1)
            got = yield from cart.sendrecv(
                me, east, cart.cart.shift(cart.rank, 1, -1)[1], sendtag=4, recvtag=4
            )
            cart.free()
            # I receive the coords of my west neighbor.
            expected = (me[0], (me[1] - 1) % 3)
            return got == expected

        assert set(mpi_run(6, program(body))) == {True}

    def test_bad_grid_rejected(self, mpi_run, program):
        from repro.ompi.errors import MPIErrArg

        def body(mpi, comm):
            try:
                yield from comm.create_cart(dims=(7, 2))
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(4, program(body))) == {"rejected"}


class TestErrhandlerDispatch:
    def test_fatal_aborts(self, mpi_run, program):
        def body(mpi, comm):
            try:
                comm.call_errhandler(MPIErrComm("synthetic"))
            except MPIAbort:
                return "aborted"
            return "continued"
            yield  # pragma: no cover

        assert set(mpi_run(1, program(body), nodes=1)) == {"aborted"}

    def test_errors_return_raises_original(self, mpi_run, program):
        def body(mpi, comm):
            comm.set_errhandler(ERRORS_RETURN)
            try:
                comm.call_errhandler(MPIErrComm("synthetic"))
            except MPIAbort:
                return "aborted"
            except MPIError:
                return "returned"
            return "continued"
            yield  # pragma: no cover

        assert set(mpi_run(1, program(body), nodes=1)) == {"returned"}


class TestMisc:
    def test_wtime_advances(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            t0 = mpi.wtime()
            yield Sleep(1e-3)
            return mpi.wtime() - t0

        results = mpi_run(1, program(body), nodes=1)
        assert results[0] == pytest.approx(1e-3)

    def test_cm_pml_falls_back_to_consensus(self, mpi_run):
        """§III-B3: without ob1, the exCID generator is disabled."""
        from repro.ompi.config import MpiConfig

        config = MpiConfig(cid_mode="excid", pml="cm")

        def main(mpi):
            world = yield from mpi.mpi_init()
            dup = yield from world.dup()
            no_excid = dup.excid is None       # consensus path was used
            cids = yield from world.allgather(dup.local_cid)
            dup.free()
            # And the Sessions constructor refuses outright.
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            try:
                yield from mpi.comm_create_from_group(group, "nope")
            except MPIErrComm:
                refused = True
            else:
                refused = False
            yield from session.finalize()
            yield from mpi.mpi_finalize()
            return (no_excid, len(set(cids)) == 1, refused)

        assert set(mpi_run(2, main, config=config)) == {(True, True, True)}

"""Error classes and error handlers (pre-init constructible)."""

import pytest

from repro.ompi.errors import (
    ERR_TRUNCATE,
    ERRORS_ARE_FATAL,
    ERRORS_RETURN,
    Errhandler,
    MPIAbort,
    MPIErrArg,
    MPIErrComm,
    MPIError,
    MPIErrTruncate,
)


class TestErrorClasses:
    def test_errclass_attached(self):
        assert MPIErrTruncate().errclass == ERR_TRUNCATE

    def test_message_included(self):
        err = MPIErrComm("bad handle")
        assert "MPI_ERR_COMM" in str(err)
        assert "bad handle" in str(err)

    def test_hierarchy(self):
        assert issubclass(MPIErrArg, MPIError)
        assert isinstance(MPIErrTruncate(), MPIError)


class TestErrhandlers:
    def test_fatal_raises_abort(self):
        with pytest.raises(MPIAbort):
            ERRORS_ARE_FATAL.invoke(None, MPIErrComm("x"))

    def test_return_reraises_original(self):
        with pytest.raises(MPIErrComm):
            ERRORS_RETURN.invoke(None, MPIErrComm("x"))

    def test_custom_handler_callback_runs_then_raises(self):
        seen = []
        handler = Errhandler(lambda origin, err: seen.append((origin, err.errclass)))
        with pytest.raises(MPIErrTruncate):
            handler.invoke("the-comm", MPIErrTruncate("overflow"))
        assert seen == [("the-comm", ERR_TRUNCATE)]

    def test_freed_handler_rejected(self):
        handler = Errhandler()
        handler.free()
        with pytest.raises(MPIErrArg):
            handler.invoke(None, MPIErrComm("x"))

    def test_constructible_before_init(self):
        """Paper §III-B5: errhandler creation requires no library state."""
        h = Errhandler(name="pre-init")
        assert not h.freed

"""OPAL: refcounted objects, cleanup framework, MCA registry."""

import pytest

from repro.ompi.opal.cleanup import CleanupError, CleanupFramework, SubsystemRegistry
from repro.ompi.opal.mca import MCAComponent, MCAError, MCAFramework, MCARegistry
from repro.ompi.opal.object import OpalObject, OpalObjectError


class TestOpalObject:
    def test_starts_with_one_ref(self):
        assert OpalObject().refcount == 1

    def test_destructor_runs_once_at_zero(self):
        class Obj(OpalObject):
            destructs = 0

            def _destruct(self):
                Obj.destructs += 1

        obj = Obj()
        obj.retain()
        assert obj.release() is False
        assert Obj.destructs == 0
        assert obj.release() is True
        assert Obj.destructs == 1

    def test_release_after_destruct_rejected(self):
        obj = OpalObject()
        obj.release()
        with pytest.raises(OpalObjectError):
            obj.release()

    def test_retain_after_destruct_rejected(self):
        obj = OpalObject()
        obj.release()
        with pytest.raises(OpalObjectError):
            obj.retain()


class TestCleanupFramework:
    def test_lifo_order(self):
        fw = CleanupFramework()
        order = []
        for name in ("a", "b", "c"):
            fw.register(name, lambda n=name: order.append(n))
        assert fw.run_all() == ["c", "b", "a"]
        assert order == ["c", "b", "a"]

    def test_run_all_clears(self):
        fw = CleanupFramework()
        fw.register("x", lambda: None)
        fw.run_all()
        assert fw.pending == 0
        assert fw.run_all() == []

    def test_epochs_counted(self):
        fw = CleanupFramework()
        fw.run_all()
        fw.run_all()
        assert fw.epochs_completed == 2


def drive(gen):
    """Drive a subsystem-acquire sub-generator that never blocks."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


class TestSubsystemRegistry:
    def make(self):
        fw = CleanupFramework()
        return fw, SubsystemRegistry(fw)

    def test_init_once_refcount_many(self):
        fw, reg = self.make()
        inits = []
        for _ in range(3):
            drive(reg.acquire("pml", lambda: inits.append(1), None))
        assert sum(inits) == 1
        assert reg.refcount("pml") == 3

    def test_release_without_acquire_rejected(self):
        _fw, reg = self.make()
        with pytest.raises(CleanupError):
            reg.release("nope")

    def test_cleanup_resets_initialized_state(self):
        fw, reg = self.make()
        inits = []
        drive(reg.acquire("pml", lambda: inits.append(1), None))
        reg.release("pml")
        # Not yet cleaned: a re-acquire must NOT re-init.
        drive(reg.acquire("pml", lambda: inits.append(1), None))
        assert sum(inits) == 1
        reg.release("pml")
        fw.run_all()
        # Epoch over: next acquire re-initializes.
        drive(reg.acquire("pml", lambda: inits.append(1), None))
        assert sum(inits) == 2
        assert reg.init_epochs["pml"] == 2

    def test_cleanup_fn_runs_on_teardown(self):
        fw, reg = self.make()
        torn = []
        drive(reg.acquire("x", None, lambda: torn.append("x")))
        reg.release("x")
        fw.run_all()
        assert torn == ["x"]

    def test_all_released(self):
        fw, reg = self.make()
        drive(reg.acquire("a", None, None))
        assert not reg.all_released()
        reg.release("a")
        assert reg.all_released()

    def test_live_subsystems(self):
        fw, reg = self.make()
        drive(reg.acquire("b", None, None))
        drive(reg.acquire("a", None, None))
        assert reg.live_subsystems == ["a", "b"]


class TestMca:
    def test_selection_by_priority(self):
        fw = MCAFramework("pml")
        fw.register(MCAComponent("cm", priority=10))
        fw.register(MCAComponent("ob1", priority=20))
        fw.open()
        assert fw.select().name == "ob1"

    def test_explicit_selection(self):
        fw = MCAFramework("pml")
        fw.register(MCAComponent("cm", priority=10))
        fw.register(MCAComponent("ob1", priority=20))
        fw.open()
        assert fw.select(prefer="cm").name == "cm"

    def test_select_unknown_component(self):
        fw = MCAFramework("pml")
        fw.register(MCAComponent("ob1"))
        fw.open()
        with pytest.raises(MCAError):
            fw.select(prefer="ucx")

    def test_select_requires_open(self):
        fw = MCAFramework("pml")
        fw.register(MCAComponent("ob1"))
        with pytest.raises(MCAError):
            fw.select()

    def test_open_close_cycle(self):
        fw = MCAFramework("btl")
        fw.register(MCAComponent("sm"))
        fw.open()
        fw.select()
        fw.close()
        assert fw.selected is None
        assert not fw.is_open
        with pytest.raises(MCAError):
            fw.close()
        fw.open()
        assert fw.open_count == 2

    def test_duplicate_component_rejected(self):
        fw = MCAFramework("pml")
        fw.register(MCAComponent("ob1"))
        with pytest.raises(MCAError):
            fw.register(MCAComponent("ob1"))

    def test_registry_params(self):
        reg = MCARegistry()
        reg.set_param("pml_ob1_eager_limit", 8192)
        assert reg.get_param("pml_ob1_eager_limit") == 8192
        assert reg.get_param("missing", 1) == 1

    def test_registry_framework_identity(self):
        reg = MCARegistry()
        assert reg.framework("pml") is reg.framework("pml")

    def test_open_frameworks_listing(self):
        reg = MCARegistry()
        reg.framework("pml").open()
        reg.framework("btl")
        assert reg.open_frameworks() == ["pml"]

"""Intercommunicators: creation, remote addressing, merge."""

import pytest

from repro.ompi.constants import SUM, UNDEFINED
from repro.ompi.errors import MPIErrRank
from repro.ompi.intercomm import Intercomm
from repro.ompi.status import Status
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


def split_sides(comm):
    """Sub-generator: split 2n ranks into two intracomms + the intercomm.

    Evens form side A, odds side B; leaders are local rank 0; the
    parent comm bridges the leaders.
    """
    side = comm.rank % 2
    local = yield from comm.split(color=side, key=comm.rank)
    inter = yield from Intercomm.create(
        local, 0, comm if local.rank == 0 else None,
        remote_leader=(1 - side), tag=3,
    )
    return side, local, inter


class TestCreate:
    def test_sizes_and_disjoint_groups(self, mpi_run, program):
        def body(mpi, comm):
            side, local, inter = yield from split_sides(comm)
            out = (side, inter.rank, inter.local_size, inter.remote_size)
            yield from inter.barrier()
            inter.free()
            local.free()
            return out

        results = mpi_run(6, program(body))
        for world_rank, (side, rank, lsize, rsize) in enumerate(results):
            assert side == world_rank % 2
            assert rank == world_rank // 2
            assert lsize == 3 and rsize == 3

    def test_send_addresses_remote_group(self, mpi_run, program):
        def body(mpi, comm):
            side, local, inter = yield from split_sides(comm)
            # Pairwise: A_i <-> B_i by *remote* rank i.
            if side == 0:
                yield from inter.send(f"A{inter.rank}", inter.rank, tag=1)
                reply = yield from inter.recv(inter.rank, tag=2)
            else:
                got = yield from inter.recv(inter.rank, tag=1)
                yield from inter.send(f"B-saw-{got}", inter.rank, tag=2)
                reply = got
            yield from inter.barrier()
            inter.free()
            local.free()
            return reply

        results = mpi_run(4, program(body))
        assert results[0] == "B-saw-A0"
        assert results[2] == "B-saw-A1"
        assert results[1] == "A0" and results[3] == "A1"

    def test_status_reports_remote_rank(self, mpi_run, program):
        def body(mpi, comm):
            from repro.ompi.constants import ANY_SOURCE

            side, local, inter = yield from split_sides(comm)
            if side == 0 and inter.rank == 1:
                yield from inter.send("x", 0, tag=5)
            if side == 1 and inter.rank == 0:
                status = Status()
                yield from inter.recv(ANY_SOURCE, tag=5, status=status)
                result = status.source
            else:
                result = None
            yield from inter.barrier()
            inter.free()
            local.free()
            return result

        results = mpi_run(4, program(body))
        assert results[1] == 1  # remote (side-A) rank 1, not a bridge rank

    def test_remote_rank_bounds(self, mpi_run, program):
        def body(mpi, comm):
            side, local, inter = yield from split_sides(comm)
            try:
                yield from inter.send("x", inter.remote_size, tag=1)
            except MPIErrRank:
                result = "rejected"
            else:
                result = "accepted"
            yield from inter.barrier()
            inter.free()
            local.free()
            return result

        assert set(mpi_run(4, program(body))) == {"rejected"}


class TestMerge:
    @pytest.mark.parametrize("high_side", [0, 1])
    def test_merge_orders_by_high(self, mpi_run, program, high_side):
        def body(mpi, comm):
            side, local, inter = yield from split_sides(comm)
            merged = yield from inter.merge(high=(side == high_side))
            total = yield from merged.allreduce(1, op=SUM)
            my_rank = merged.rank
            merged.free()
            inter.free()
            local.free()
            return (side, my_rank, total)

        results = mpi_run(4, program(body))
        for side, my_rank, total in results:
            assert total == 4
            if side == high_side:
                assert my_rank >= 2  # the "high" side comes second
            else:
                assert my_rank < 2

    def test_merge_tie_consistent(self, mpi_run, program):
        """Both sides pass high=False: order is still globally agreed."""

        def body(mpi, comm):
            side, local, inter = yield from split_sides(comm)
            merged = yield from inter.merge(high=False)
            ranks = yield from merged.allgather((side, merged.rank))
            merged.free()
            inter.free()
            local.free()
            return ranks

        results = mpi_run(4, program(body))
        # All ranks observed the identical placement.
        assert all(r == results[0] for r in results)
        placements = dict((mr, s) for s, mr in results[0])
        assert len(placements) == 4

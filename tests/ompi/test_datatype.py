"""Datatypes and payload sizing."""

import numpy as np
import pytest

from repro.ompi.datatype import (
    BYTE,
    DOUBLE,
    INT,
    Datatype,
    sizeof_payload,
)
from repro.ompi.errors import MPIErrArg


class TestBasicTypes:
    @pytest.mark.parametrize("dt,size", [(BYTE, 1), (INT, 4), (DOUBLE, 8)])
    def test_sizes(self, dt, size):
        assert dt.size == size
        assert dt.wire_size(10) == 10 * size

    def test_numpy_mapping(self):
        assert DOUBLE.np_dtype == np.dtype(np.float64)


class TestDerivedTypes:
    def test_contiguous(self):
        dt = INT.create_contiguous(5).commit()
        assert dt.size == 20
        assert dt.extent == 20

    def test_vector_with_gaps(self):
        # 3 blocks of 2 ints, stride 4 ints: data 24B, extent covers gaps.
        dt = INT.create_vector(3, 2, 4).commit()
        assert dt.size == 3 * 2 * 4
        assert dt.extent == (4 * 2 + 2) * 4

    def test_vector_zero_count(self):
        dt = INT.create_vector(0, 1, 1).commit()
        assert dt.size == 0
        assert dt.extent == 0

    def test_uncommitted_rejected(self):
        dt = INT.create_contiguous(2)
        with pytest.raises(MPIErrArg):
            dt.wire_size(1)

    def test_negative_count_rejected(self):
        with pytest.raises(MPIErrArg):
            INT.create_contiguous(-1)

    def test_use_after_free(self):
        dt = INT.create_contiguous(2).commit()
        dt.free()
        with pytest.raises(MPIErrArg):
            dt.wire_size(1)

    def test_negative_size_rejected(self):
        with pytest.raises(MPIErrArg):
            Datatype("bad", -1)


class TestSizeofPayload:
    def test_explicit_type_count_wins(self):
        assert sizeof_payload("whatever", DOUBLE, 4) == 32

    def test_numpy_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert sizeof_payload(arr) == 800

    def test_bytes(self):
        assert sizeof_payload(b"12345") == 5

    def test_none_is_empty(self):
        assert sizeof_payload(None) == 0

    def test_scalars(self):
        assert sizeof_payload(1) == 8
        assert sizeof_payload(1.5) == 8

    def test_containers_recursive(self):
        assert sizeof_payload([1, 2, 3]) == 8 + 24
        assert sizeof_payload({"k": 1.0}) >= 9

    def test_unknown_object_default(self):
        class Thing:
            pass

        assert sizeof_payload(Thing()) == 64

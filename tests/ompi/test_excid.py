"""exCID generator unit tests (paper §III-B3 rules)."""

import pytest

from repro.ompi.errors import MPIErrIntern
from repro.ompi.excid import SUBFIELD_MAX, SUBFIELDS, ExCid, ExcidState


class TestExCid:
    def test_fresh_excid_shape(self):
        st = ExcidState.from_pgcid(42)
        assert st.excid.pgcid == 42
        assert st.excid.sub == (0,) * SUBFIELDS
        assert st.active == 7
        assert st.counter == 1

    def test_pgcid_zero_reserved(self):
        with pytest.raises(MPIErrIntern):
            ExcidState.from_pgcid(0)

    def test_pgcid_out_of_range(self):
        with pytest.raises(MPIErrIntern):
            ExCid(pgcid=2**64)

    def test_bad_subfields(self):
        with pytest.raises(MPIErrIntern):
            ExCid(pgcid=1, sub=(256,) * 8)
        with pytest.raises(MPIErrIntern):
            ExCid(pgcid=1, sub=(0,) * 7)

    def test_key_hashable_and_stable(self):
        a = ExcidState.from_pgcid(5).excid
        b = ExcidState.from_pgcid(5).excid
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())


class TestDerivation:
    def test_child_stamps_parent_active_subfield(self):
        parent = ExcidState.from_pgcid(7)
        child = parent.derive()
        assert child.excid.sub[7] == 1
        assert child.active == 6

    def test_sequential_children_distinct(self):
        parent = ExcidState.from_pgcid(7)
        kids = [parent.derive() for _ in range(10)]
        assert len({k.excid.key() for k in kids}) == 10
        assert [k.excid.sub[7] for k in kids] == list(range(1, 11))

    def test_grandchildren_keep_parent_prefix(self):
        parent = ExcidState.from_pgcid(7)
        child = parent.derive()
        grand = child.derive()
        assert grand.excid.sub[7] == child.excid.sub[7]
        assert grand.excid.sub[6] == 1
        assert grand.active == 5

    def test_255_limit(self):
        parent = ExcidState.from_pgcid(7)
        for _ in range(SUBFIELD_MAX):
            parent.derive()
        assert not parent.can_derive()
        with pytest.raises(MPIErrIntern):
            parent.derive()

    def test_depth_limit(self):
        state = ExcidState.from_pgcid(9)
        for _ in range(7):  # active walks 7 -> 0
            state = state.derive()
        assert state.active == 0
        assert not state.can_derive()
        with pytest.raises(MPIErrIntern):
            state.derive()

    def test_parent_differs_from_all_children(self):
        parent = ExcidState.from_pgcid(3)
        keys = {parent.excid.key()}
        for _ in range(50):
            keys.add(parent.derive().excid.key())
        assert len(keys) == 51

    def test_deterministic_across_replicas(self):
        """Two processes running the same dup sequence agree with zero
        communication — the property that replaces the consensus rounds."""
        a, b = ExcidState.from_pgcid(11), ExcidState.from_pgcid(11)
        for _ in range(5):
            assert a.derive().excid == b.derive().excid

"""MPI Sessions lifecycle: init/finalize cycles, psets, isolation,
pre-init object usage, and the coexistence of both process models."""

import pytest

from repro.ompi.constants import SUM, THREAD_MULTIPLE, THREAD_SINGLE
from repro.ompi.errors import MPIErrArg, MPIErrSession
from repro.ompi.instance import SUBSYSTEMS
from repro.ompi.session import BUILTIN_PSETS


class TestSessionBasics:
    def test_init_returns_distinct_handles(self, mpi_run):
        def main(mpi):
            s1 = yield from mpi.session_init()
            s2 = yield from mpi.session_init()
            distinct = s1.handle_id != s2.handle_id
            yield from s2.finalize()
            yield from s1.finalize()
            return distinct

        assert set(mpi_run(2, main, sessions=True)) == {True}

    def test_thread_level_recorded(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init(THREAD_MULTIPLE)
            level = s.thread_level
            yield from s.finalize()
            return level

        assert set(mpi_run(1, main, sessions=True, nodes=1)) == {THREAD_MULTIPLE}

    def test_use_after_finalize_rejected(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            yield from s.finalize()
            try:
                yield from s.get_num_psets()
            except MPIErrSession:
                return "rejected"
            return "accepted"

        assert set(mpi_run(1, main, sessions=True, nodes=1)) == {"rejected"}

    def test_double_finalize_rejected(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            yield from s.finalize()
            try:
                yield from s.finalize()
            except MPIErrSession:
                return "rejected"
            return "accepted"

        assert set(mpi_run(1, main, sessions=True, nodes=1)) == {"rejected"}

    def test_finalize_with_live_comm_rejected(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            group = yield from s.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "leak")
            try:
                yield from s.finalize()
            except MPIErrSession:
                result = "rejected"
            else:
                result = "accepted"
            comm.free()
            if result == "rejected":
                yield from s.finalize()
            return result

        assert set(mpi_run(2, main, sessions=True)) == {"rejected"}


class TestPsets:
    def test_builtin_psets_present(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            num = yield from s.get_num_psets()
            names = []
            for i in range(num):
                names.append((yield from s.get_nth_pset(i)))
            yield from s.finalize()
            return names

        results = mpi_run(2, main, sessions=True)
        for names in results:
            assert set(BUILTIN_PSETS) <= set(names)

    def test_world_pset_info(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            info = yield from s.get_pset_info("mpi://world")
            yield from s.finalize()
            return info["mpi_size"]

        assert set(mpi_run(4, main, sessions=True)) == {4}

    def test_self_pset(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            group = yield from s.group_from_pset("mpi://self")
            ok = group.size == 1 and group.proc(0) == mpi.proc
            comm = yield from mpi.comm_create_from_group(group, "self")
            total = yield from comm.allreduce(41, op=SUM)
            comm.free()
            yield from s.finalize()
            return ok and total == 41

        assert set(mpi_run(3, main, sessions=True)) == {True}

    def test_shared_pset_is_node_local(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            group = yield from s.group_from_pset("mpi://shared")
            members = group.members()
            yield from s.finalize()
            return sorted(p.rank for p in members)

        # 4 ranks over 2 nodes at ppn=2.
        results = mpi_run(4, main, sessions=True, nodes=2, ppn=2)
        assert results == [[0, 1], [0, 1], [2, 3], [2, 3]]

    def test_runtime_defined_pset(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            group = yield from s.group_from_pset("app/custom")
            yield from s.finalize()
            return [p.rank for p in group.members()]

        results = mpi_run(4, main, sessions=True, psets={"app/custom": [3, 1]})
        assert set(tuple(r) for r in results) == {(3, 1)}

    def test_unknown_pset_raises(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            try:
                yield from s.group_from_pset("mpi://nonsense")
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from s.finalize()
            return result

        assert set(mpi_run(1, main, sessions=True, nodes=1)) == {"rejected"}

    def test_nth_pset_out_of_range(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            num = yield from s.get_num_psets()
            try:
                yield from s.get_nth_pset(num)
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from s.finalize()
            return result

        assert set(mpi_run(1, main, sessions=True, nodes=1)) == {"rejected"}

    def test_group_carries_session(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            group = yield from s.group_from_pset("mpi://world")
            same = group.session is s
            yield from s.finalize()
            return same

        assert set(mpi_run(2, main, sessions=True)) == {True}


class TestReinitCycles:
    def test_full_cycles_reinitialize_subsystems(self, mpi_run):
        def main(mpi):
            epochs = []
            for _cycle in range(3):
                s = yield from mpi.session_init()
                epochs.append(mpi.subsystems.init_epochs["pml_ob1"])
                yield from s.finalize()
                assert mpi.instance_refcount == 0
            return epochs

        results = mpi_run(2, main, sessions=True)
        assert all(r == [1, 2, 3] for r in results)

    def test_nested_sessions_share_one_epoch(self, mpi_run):
        def main(mpi):
            s1 = yield from mpi.session_init()
            s2 = yield from mpi.session_init()
            s3 = yield from mpi.session_init()
            epoch = mpi.subsystems.init_epochs["pml_ob1"]
            yield from s2.finalize()
            yield from s1.finalize()
            # Subsystems stay alive while any session exists.
            alive = mpi.subsystems.is_initialized("pml_ob1")
            yield from s3.finalize()
            gone = not mpi.subsystems.is_initialized("pml_ob1")
            return (epoch, alive, gone)

        assert set(mpi_run(2, main, sessions=True)) == {(1, True, True)}

    def test_cleanup_runs_all_subsystems(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            live = list(mpi.subsystems.live_subsystems)
            yield from s.finalize()
            return (sorted(live), mpi.cleanup.pending)

        results = mpi_run(1, main, sessions=True, nodes=1)
        live, pending = results[0]
        assert live == sorted(SUBSYSTEMS)
        assert pending == 0

    def test_communication_works_after_reinit(self, mpi_run):
        def main(mpi):
            totals = []
            for cycle in range(2):
                s = yield from mpi.session_init()
                group = yield from s.group_from_pset("mpi://world")
                comm = yield from mpi.comm_create_from_group(group, f"c{cycle}")
                totals.append((yield from comm.allreduce(1, op=SUM)))
                comm.free()
                yield from s.finalize()
            return totals

        assert set(tuple(r) for r in mpi_run(4, main, sessions=True)) == {(4, 4)}

    def test_first_session_pays_handle_init(self, mpi_run):
        """Later sessions in the same epoch are cheaper than the first."""

        def main(mpi):
            t0 = mpi.engine.now
            s1 = yield from mpi.session_init()
            t1 = mpi.engine.now
            s2 = yield from mpi.session_init()
            t2 = mpi.engine.now
            yield from s2.finalize()
            yield from s1.finalize()
            return (t1 - t0, t2 - t1)

        results = mpi_run(1, main, sessions=True, nodes=1)
        first, second = results[0]
        assert second < first / 2


class TestWorldProcessModel:
    def test_mpi_init_twice_rejected(self, mpi_run):
        def main(mpi):
            yield from mpi.mpi_init()
            try:
                yield from mpi.mpi_init()
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from mpi.mpi_finalize()
            return result

        assert set(mpi_run(2, main)) == {"rejected"}

    def test_no_reinit_after_finalize(self, mpi_run):
        """The MPI-3 restriction Sessions remove (§II-A) holds for the
        legacy path."""

        def main(mpi):
            yield from mpi.mpi_init()
            yield from mpi.mpi_finalize()
            try:
                yield from mpi.mpi_init()
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, main)) == {"rejected"}

    def test_finalize_without_init_rejected(self, mpi_run):
        def main(mpi):
            try:
                yield from mpi.mpi_finalize()
            except MPIErrArg:
                return "rejected"
            return "accepted"
            yield  # pragma: no cover

        assert set(mpi_run(1, main, nodes=1)) == {"rejected"}

    def test_comm_self(self, mpi_run):
        def main(mpi):
            yield from mpi.mpi_init()
            out = (mpi.COMM_SELF.size, mpi.COMM_SELF.rank)
            total = yield from mpi.COMM_SELF.allreduce(5, op=SUM)
            yield from mpi.mpi_finalize()
            return (*out, total)

        assert set(mpi_run(3, main)) == {(1, 0, 5)}

    def test_internal_session_backs_wpm(self, mpi_run):
        """The restructured MPI_Init wraps an internal session (§III-B5)."""

        def main(mpi):
            yield from mpi.mpi_init()
            internal = mpi.world_session is not None and mpi.world_session.internal
            cannot_finalize_directly = False
            try:
                yield from mpi.world_session.finalize()
            except MPIErrSession:
                cannot_finalize_directly = True
            yield from mpi.mpi_finalize()
            return (internal, cannot_finalize_directly)

        assert set(mpi_run(2, main)) == {(True, True)}


class TestCoexistence:
    def test_wpm_and_sessions_together(self, mpi_run):
        """Paper §III-B5: the Sessions Process Model works alongside the
        World Process Model (as in the HPCC and 2MESH experiments)."""

        def main(mpi):
            world = yield from mpi.mpi_init(THREAD_SINGLE)
            s = yield from mpi.session_init(THREAD_MULTIPLE)
            group = yield from s.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "coexist")
            a = yield from world.allreduce(1, op=SUM)
            b = yield from comm.allreduce(2, op=SUM)
            comm.free()
            yield from s.finalize()
            # World communication still works after the session is gone.
            c = yield from world.allreduce(3, op=SUM)
            yield from mpi.mpi_finalize()
            return (a, b, c)

        results = mpi_run(4, main, sessions=True)
        assert set(results) == {(4, 8, 12)}

    def test_session_outlives_wpm_subsystems(self, mpi_run):
        def main(mpi):
            yield from mpi.mpi_init()
            s = yield from mpi.session_init()
            yield from mpi.mpi_finalize()
            # The session keeps the instance alive after MPI_Finalize.
            alive = mpi.subsystems.is_initialized("pml_ob1")
            group = yield from s.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "late")
            total = yield from comm.allreduce(1, op=SUM)
            comm.free()
            yield from s.finalize()
            return (alive, total)

        assert set(mpi_run(2, main, sessions=True)) == {(True, 2)}


class TestPreInitObjects:
    def test_info_errhandler_attrs_before_init(self, mpi_run):
        """Paper §III-B5: Info, Errhandler, and attribute calls are legal
        before any initialization."""
        from repro.ompi.errors import Errhandler
        from repro.ompi.info import Info

        def main(mpi):
            info = Info({"mpi_thread_support": "multiple"})
            handler = Errhandler(name="early")
            keyval = mpi.keyvals.create()
            cache = mpi.new_attr_cache()
            cache.set(keyval, "cached-before-init")
            s = yield from mpi.session_init(info=info, errhandler=handler)
            ok = s.get_info() is info and s.errhandler is handler
            value = cache.get(keyval)
            yield from s.finalize()
            return (ok, value)

        assert set(mpi_run(1, main, sessions=True, nodes=1)) == {
            (True, (True, "cached-before-init"))
        }

    def test_session_attribute_caching(self, mpi_run):
        def main(mpi):
            s = yield from mpi.session_init()
            keyval = mpi.keyvals.create()
            s.attrs.set(keyval, {"app": "state"})
            found, value = s.attrs.get(keyval)
            yield from s.finalize()
            return (found, value)

        assert mpi_run(1, main, sessions=True, nodes=1) == [(True, {"app": "state"})]

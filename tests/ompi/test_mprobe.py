"""Matched probe: MPI_Mprobe / MPI_Improbe / MPI_Mrecv."""

import numpy as np
import pytest

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.errors import MPIErrArg
from repro.ompi.status import Status
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


class TestMprobe:
    def test_mprobe_then_mrecv(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send({"k": 1}, 1, tag=5)
                return None
            matched = yield from comm.mprobe(source=0, tag=5)
            assert matched.source == 0 and matched.tag == 5
            status = Status()
            payload = yield from matched.mrecv(status=status)
            return (payload, status.source)

        results = mpi_run(2, program(body))
        assert results[1] == ({"k": 1}, 0)

    def test_improbe_returns_none_when_empty(self, mpi_run, program):
        def body(mpi, comm):
            return comm.improbe(source=ANY_SOURCE, tag=ANY_TAG)
            yield  # pragma: no cover

        assert mpi_run(1, program(body), nodes=1) == [None]

    def test_claimed_message_invisible_to_other_receives(self, mpi_run, program):
        """The MPI-3 point of mprobe: a claimed message cannot be stolen."""

        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send("first", 1, tag=7)
                yield from comm.send("second", 1, tag=7)
                return None
            matched = yield from comm.mprobe(source=0, tag=7)
            # A plain recv posted AFTER the claim gets the *second* message.
            other = yield from comm.recv(0, tag=7)
            claimed = yield from matched.mrecv()
            return (claimed, other)

        results = mpi_run(2, program(body))
        assert results[1] == ("first", "second")

    def test_mrecv_twice_rejected(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send(1, 1, tag=3)
                return None
            matched = yield from comm.mprobe(source=0, tag=3)
            yield from matched.mrecv()
            try:
                yield from matched.mrecv()
            except MPIErrArg:
                return "rejected"
            return "accepted"

        results = mpi_run(2, program(body))
        assert results[1] == "rejected"

    def test_mprobe_rendezvous_message(self, mpi_run, program):
        """A claimed RTS still completes the rendezvous on mrecv."""

        def body(mpi, comm):
            if comm.rank == 0:
                data = np.arange(1 << 16, dtype=np.float64)  # 512 KB > eager
                yield from comm.send(data, 1, tag=9)
                return None
            matched = yield from comm.mprobe(source=0, tag=9)
            got = yield from matched.mrecv()
            return float(got.sum())

        results = mpi_run(2, program(body))
        assert results[1] == float(sum(range(1 << 16)))

    def test_mprobe_wildcards(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank != 0:
                yield from comm.send(comm.rank, 0, tag=comm.rank)
                return None
            got = []
            for _ in range(comm.size - 1):
                matched = yield from comm.mprobe(source=ANY_SOURCE, tag=ANY_TAG)
                got.append((yield from matched.mrecv()))
            return sorted(got)

        results = mpi_run(4, program(body))
        assert results[0] == [1, 2, 3]


def test_mprobe_timeout(mpi_run, program):
    from repro.simtime.process import SimTimeout

    def body(mpi, comm):
        try:
            yield from comm.mprobe(source=0, tag=99, timeout=1e-3)
        except SimTimeout:
            return "timed-out"
        return "matched"

    assert mpi_run(1, program(body), nodes=1) == ["timed-out"]

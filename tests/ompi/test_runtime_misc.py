"""Runtime odds and ends + regression tests for review findings."""

import pytest

from repro.api import SimSpec, make_world
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM


def test_stale_cid_stash_dropped_on_free():
    """Regression (code review): a packet stashed for a freed
    communicator's CID must not be replayed into a new communicator
    that reuses the index."""
    world = make_world(spec=SimSpec(nprocs=2, machine=laptop(num_nodes=2),
                                    ppn=1, config=MpiConfig.baseline()))
    out = {}

    def sender(mpi):
        comm = yield from mpi.mpi_init()
        x = yield from comm.dup()
        # Fire a message on X that will arrive at rank 1 *after* rank 1
        # has freed X and reused its CID for Y.
        yield from x.send("stale-for-X", 1, tag=1, nbytes=16)
        x.free()
        y = yield from comm.dup()
        yield from y.send("fresh-for-Y", 1, tag=1, nbytes=16)
        got = yield from y.recv(1, tag=2)
        out["sender"] = got
        y.free()
        yield from mpi.mpi_finalize()

    def receiver(mpi):
        from repro.simtime.process import Sleep

        comm = yield from mpi.mpi_init()
        x = yield from comm.dup()
        # Receive X's message normally, then free X: its CID returns to
        # the table and Y (the next dup) reuses it.
        msg_x = yield from x.recv(0, tag=1)
        x.free()
        y = yield from comm.dup()
        msg_y = yield from y.recv(0, tag=1)
        yield from y.send("ack", 0, tag=2, nbytes=4)
        out["receiver"] = (msg_x, msg_y, y.local_cid)
        y.free()
        yield from mpi.mpi_finalize()

    procs = world.spawn_ranks(lambda mpi: sender(mpi) if mpi.rank_in_job == 0 else receiver(mpi))
    world.run()
    for p in procs:
        if p.exception:
            raise p.exception
    msg_x, msg_y, _cid = out["receiver"]
    assert msg_x == "stale-for-X"
    assert msg_y == "fresh-for-Y"


def test_excid_enabled_matrix():
    from repro.ompi.runtime import MpiRuntime

    world = make_world(spec=SimSpec(nprocs=1, machine=laptop(num_nodes=1), ppn=1))
    cases = [
        (MpiConfig(cid_mode="excid", pml="ob1"), True),
        (MpiConfig(cid_mode="excid", pml="cm"), False),
        (MpiConfig(cid_mode="consensus", pml="ob1"), False),
    ]
    for config, expected in cases:
        rt = MpiRuntime(world.cluster, world.job, world.fabric, 0, config)
        assert rt.excid_enabled is expected, config


def test_bad_config_values_rejected():
    with pytest.raises(ValueError):
        MpiConfig(cid_mode="telepathy")
    with pytest.raises(ValueError):
        MpiConfig(excid_dup_policy="always")


def test_wtime_matches_engine(one_node_cluster):
    from repro.ompi.pml.ob1 import Fabric
    from repro.ompi.runtime import MpiRuntime

    job = one_node_cluster.launch(1, ppn=1)
    rt = MpiRuntime(one_node_cluster, job, Fabric(one_node_cluster), 0)
    assert rt.wtime() == one_node_cluster.engine.now


def test_finalize_is_synchronizing(mpi_run):
    """MPI_Finalize must not let a fast rank finish while a slow rank is
    still communicating (ompi fences in finalize)."""
    from repro.simtime.process import Sleep

    done_at = {}

    def main(mpi):
        world = yield from mpi.mpi_init()
        if world.rank == 1:
            yield Sleep(5e-3)
        yield from mpi.mpi_finalize()
        done_at[mpi.rank_in_job] = mpi.engine.now
        return "ok"

    mpi_run(2, main)
    assert abs(done_at[0] - done_at[1]) < 1e-3

"""MPI-IO over the simulated shared filesystem."""

import pytest

from repro.ompi.errors import MPIErrArg
from repro.ompi.io import (
    MODE_CREATE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
    File,
    SimFilesystem,
)
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


class TestOpenClose:
    def test_open_creates(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/scratch/a.dat")
            size = yield from fh.get_size()
            yield from fh.close()
            return size

        assert set(mpi_run(2, program(body))) == {0}

    def test_open_without_create_fails(self, mpi_run, program):
        def body(mpi, comm):
            try:
                yield from File.open(comm, "/missing.dat", MODE_RDWR)
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_excl_on_existing_fails(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/x.dat")
            yield from fh.close()
            try:
                yield from File.open(comm, "/x.dat", MODE_RDWR | MODE_CREATE | MODE_EXCL)
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_double_close_rejected(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/y.dat")
            yield from fh.close()
            try:
                yield from fh.close()
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}


class TestExplicitOffsets:
    def test_write_read_roundtrip(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/data.bin")
            # Rank-disjoint stripes, as in the mpi4py tutorial pattern.
            stripe = bytes([comm.rank] * 8)
            yield from fh.write_at(comm.rank * 8, stripe)
            yield from comm.barrier()
            other = (comm.rank + 1) % comm.size
            got = yield from fh.read_at(other * 8, 8)
            yield from fh.close()
            return got

        results = mpi_run(3, program(body))
        assert results == [bytes([1] * 8), bytes([2] * 8), bytes([0] * 8)]

    def test_write_extends_with_zero_fill(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/sparse.bin")
            if comm.rank == 0:
                yield from fh.write_at(10, b"zz")
            yield from comm.barrier()
            data = yield from fh.read_at(0, 12)
            size = yield from fh.get_size()
            yield from fh.close()
            return (data, size)

        results = mpi_run(2, program(body))
        assert results[0] == (b"\x00" * 10 + b"zz", 12)

    def test_read_past_eof_truncated(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/short.bin")
            if comm.rank == 0:
                yield from fh.write_at(0, b"ab")
            yield from comm.barrier()
            got = yield from fh.read_at(0, 100)
            yield from fh.close()
            return got

        assert set(mpi_run(2, program(body))) == {b"ab"}

    def test_readonly_mode_blocks_writes(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/ro.bin")
            yield from fh.close()
            ro = yield from File.open(comm, "/ro.bin", MODE_RDONLY)
            try:
                yield from ro.write_at(0, b"x")
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from ro.close()
            return result

        assert set(mpi_run(2, program(body))) == {"rejected"}


class TestFilePointer:
    def test_sequential_write_read(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, f"/perrank-{comm.rank}.bin")
            yield from fh.write(b"hello ")
            yield from fh.write(b"world")
            fh.seek(0)
            got = yield from fh.read(11)
            yield from fh.close()
            return got

        assert set(mpi_run(2, program(body))) == {b"hello world"}

    def test_seek_negative_rejected(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/s.bin")
            try:
                fh.seek(-1)
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from fh.close()
            return result

        assert set(mpi_run(1, program(body), nodes=1)) == {"rejected"}


class TestCollectiveIO:
    def test_write_at_all_stripes(self, mpi_run, program):
        def body(mpi, comm):
            fh = yield from File.open(comm, "/coll.bin")
            stripe = bytes([65 + comm.rank] * 4)
            yield from fh.write_at_all(comm.rank * 4, stripe)
            got = yield from fh.read_at_all(0, 4 * comm.size)
            yield from fh.close()
            return got

        results = mpi_run(4, program(body))
        assert set(results) == {b"AAAABBBBCCCCDDDD"}

    def test_collective_cheaper_per_byte_than_independent(self, mpi_run, program):
        def body(mpi, comm):
            data = bytes(1 << 16)
            fh = yield from File.open(comm, "/cost.bin")
            yield from comm.barrier()
            t0 = mpi.engine.now
            yield from fh.write_at(comm.rank << 16, data)
            yield from comm.barrier()
            independent = mpi.engine.now - t0
            t0 = mpi.engine.now
            yield from fh.write_at_all(comm.rank << 16, data)
            collective = mpi.engine.now - t0
            yield from fh.close()
            return (independent, collective)

        results = mpi_run(4, program(body))
        indep, coll = results[0]
        assert coll < indep


class TestFromGroup:
    def test_file_from_group(self, mpi_run):
        """Paper §III-B6: file creation via an intermediate communicator."""

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            fh = yield from File.open_from_group(mpi, group, "ftest", "/fg.bin")
            yield from fh.write_at_all(mpi.rank_in_job * 2, bytes([mpi.rank_in_job] * 2))
            total = yield from fh.get_size()
            yield from fh.close()
            yield from session.finalize()
            return total

        assert set(mpi_run(3, main, sessions=True)) == {6}


def test_delete(one_node_cluster):
    fs = SimFilesystem.of(one_node_cluster)
    fs.files["/dead.bin"] = bytearray(b"x")
    File.delete(one_node_cluster, "/dead.bin")
    assert "/dead.bin" not in fs.files
    File.delete(one_node_cluster, "/dead.bin")  # idempotent

"""MPI_Group semantics: ordering rules, set ops, sparse storage."""

import pytest

from repro.ompi.constants import UNDEFINED
from repro.ompi.errors import MPIErrArg, MPIErrGroup, MPIErrRank
from repro.ompi.group import GROUP_EMPTY, IDENT, SIMILAR, UNEQUAL, Group
from repro.pmix.types import PmixProc


def procs(*ranks, ns="job"):
    return [PmixProc(ns, r) for r in ranks]


class TestBasics:
    def test_size_and_lookup(self):
        g = Group(procs(5, 3, 9))
        assert g.size == 3
        assert g.proc(0) == PmixProc("job", 5)
        assert g.rank_of(PmixProc("job", 9)) == 2

    def test_rank_of_absent_is_undefined(self):
        g = Group(procs(0, 1))
        assert g.rank_of(PmixProc("job", 7)) == UNDEFINED
        assert PmixProc("job", 7) not in g

    def test_duplicates_rejected(self):
        with pytest.raises(MPIErrGroup):
            Group(procs(1, 1))

    def test_empty_group(self):
        assert GROUP_EMPTY.size == 0
        assert len(Group(())) == 0

    def test_proc_out_of_range(self):
        g = Group(procs(0))
        with pytest.raises(MPIErrRank):
            g.proc(1)

    def test_use_after_free(self):
        g = Group(procs(0, 1))
        g.free()
        with pytest.raises(MPIErrGroup):
            g.size  # noqa: B018


class TestSparseStorage:
    def test_contiguous_detected(self):
        g = Group(procs(*range(100)))
        assert g.is_strided

    def test_strided_detected(self):
        g = Group(procs(0, 3, 6, 9, 12))
        assert g.is_strided
        assert g.proc(2) == PmixProc("job", 6)
        assert g.rank_of(PmixProc("job", 9)) == 3

    def test_irregular_stays_dense(self):
        g = Group(procs(0, 1, 2, 10))
        assert not g.is_strided

    def test_small_groups_stay_dense(self):
        assert not Group(procs(0, 1, 2)).is_strided

    def test_strided_semantics_match_dense(self):
        members = procs(2, 5, 8, 11, 14, 17)
        sparse = Group(members)
        assert sparse.is_strided
        assert sparse.members() == tuple(members)
        assert [sparse.rank_of(p) for p in members] == list(range(6))
        # A rank between stride points is not a member.
        assert sparse.rank_of(PmixProc("job", 3)) == UNDEFINED

    def test_mixed_namespace_not_strided(self):
        g = Group([PmixProc("a", 0), PmixProc("b", 1), PmixProc("a", 2), PmixProc("b", 3)])
        assert not g.is_strided


class TestCompare:
    def test_ident(self):
        assert Group(procs(1, 2)).compare(Group(procs(1, 2))) == IDENT

    def test_similar(self):
        assert Group(procs(1, 2)).compare(Group(procs(2, 1))) == SIMILAR

    def test_unequal(self):
        assert Group(procs(1, 2)).compare(Group(procs(1, 3))) == UNEQUAL


class TestSetOps:
    def test_union_order(self):
        """MPI order: self's members first, then other's new members."""
        g = Group(procs(3, 1)).union(Group(procs(2, 1)))
        assert g.members() == tuple(procs(3, 1, 2))

    def test_intersection_order(self):
        g = Group(procs(3, 1, 2)).intersection(Group(procs(2, 3)))
        assert g.members() == tuple(procs(3, 2))

    def test_difference(self):
        g = Group(procs(3, 1, 2)).difference(Group(procs(1)))
        assert g.members() == tuple(procs(3, 2))

    def test_union_with_empty(self):
        g = Group(procs(1, 2))
        assert g.union(GROUP_EMPTY).compare(g) == IDENT
        assert GROUP_EMPTY.union(g).members() == g.members()

    def test_intersection_disjoint_is_empty(self):
        assert Group(procs(1)).intersection(Group(procs(2))).size == 0


class TestInclExcl:
    def test_incl_reorders(self):
        g = Group(procs(10, 20, 30, 40)).incl([3, 0])
        assert g.members() == tuple(procs(40, 10))

    def test_incl_duplicate_rejected(self):
        with pytest.raises(MPIErrRank):
            Group(procs(0, 1)).incl([0, 0])

    def test_excl(self):
        g = Group(procs(10, 20, 30, 40)).excl([1, 3])
        assert g.members() == tuple(procs(10, 30))

    def test_excl_out_of_range(self):
        with pytest.raises(MPIErrRank):
            Group(procs(0)).excl([5])

    def test_range_incl(self):
        g = Group(procs(*range(10))).range_incl([(0, 8, 2)])
        assert g.members() == tuple(procs(0, 2, 4, 6, 8))

    def test_range_incl_descending(self):
        g = Group(procs(*range(10))).range_incl([(4, 0, -2)])
        assert g.members() == tuple(procs(4, 2, 0))

    def test_range_excl(self):
        g = Group(procs(*range(6))).range_excl([(1, 3, 1)])
        assert g.members() == tuple(procs(0, 4, 5))

    def test_zero_stride_rejected(self):
        with pytest.raises(MPIErrArg):
            Group(procs(*range(4))).range_incl([(0, 3, 0)])


class TestTranslateRanks:
    def test_translate(self):
        a = Group(procs(10, 20, 30))
        b = Group(procs(30, 10))
        assert a.translate_ranks([0, 1, 2], b) == [1, UNDEFINED, 0]

    def test_translate_roundtrip(self):
        a = Group(procs(5, 6, 7, 8))
        b = Group(procs(8, 7, 6, 5))
        forth = a.translate_ranks([0, 1, 2, 3], b)
        back = b.translate_ranks(forth, a)
        assert back == [0, 1, 2, 3]

"""The legacy consensus CID allocator (paper §III-B2)."""

import pytest

from repro.ompi.cid import MAX_CID, CidTable
from repro.ompi.constants import SUM
from repro.ompi.errors import MPIErrIntern
from tests.ompi.conftest import world_program


class TestCidTable:
    def test_lowest_free_fills_holes(self):
        t = CidTable()
        for i in range(4):
            t.reserve(i, object())
        t.release(1)
        assert t.lowest_free() == 1

    def test_lowest_free_with_floor(self):
        t = CidTable()
        t.reserve(0, object())
        assert t.lowest_free(at_least=5) == 5

    def test_double_reserve_rejected(self):
        t = CidTable()
        t.reserve(3, object())
        with pytest.raises(MPIErrIntern):
            t.reserve(3, object())

    def test_release_free_rejected(self):
        t = CidTable()
        with pytest.raises(MPIErrIntern):
            t.release(0)

    def test_get(self):
        t = CidTable()
        comm = object()
        t.reserve(2, comm)
        assert t.get(2) is comm
        assert t.get(0) is None
        assert t.get(99) is None

    def test_live_count(self):
        t = CidTable()
        t.reserve(0, object())
        t.reserve(5, object())
        assert t.live_count == 2
        t.release(0)
        assert t.live_count == 1


class TestConsensus:
    def test_all_ranks_agree(self, mpi_run):
        def body(mpi, comm):
            dup = yield from comm.dup()
            cids = yield from comm.allgather(dup.local_cid)
            dup.free()
            return len(set(cids)) == 1

        assert set(mpi_run(4, world_program(body))) == {True}

    def test_agreement_despite_asymmetric_fragmentation(self, mpi_run):
        """Each rank fragments its table differently; the consensus
        still converges on a mutually free index."""

        def body(mpi, comm):
            sentinel = object()
            # Rank r blocks indices 2+r, 2+r+1 ... staggered holes.
            for i in range(3):
                idx = 2 + comm.rank + i * 2
                if mpi.cid_table.is_free(idx):
                    mpi.cid_table.reserve(idx, sentinel)
            dup = yield from comm.dup()
            agreed = yield from comm.allgather(dup.local_cid)
            locally_valid = mpi.cid_table.get(dup.local_cid) is dup
            dup.free()
            return (len(set(agreed)) == 1, locally_valid)

        assert set(mpi_run(4, world_program(body))) == {(True, True)}

    def test_fragmentation_costs_rounds(self, mpi_run):
        """More rounds of reductions when proposals conflict (the
        weakness §IV-C2 discusses)."""

        def clean(mpi, comm):
            yield from comm.barrier()
            t0 = mpi.engine.now
            dup = yield from comm.dup()
            elapsed = mpi.engine.now - t0
            dup.free()
            return elapsed

        def fragmented(mpi, comm):
            sentinel = object()
            for i in range(8):
                idx = 2 + (comm.rank + i * 3) % 24
                if mpi.cid_table.is_free(idx):
                    mpi.cid_table.reserve(idx, sentinel)
            yield from comm.barrier()
            t0 = mpi.engine.now
            dup = yield from comm.dup()
            elapsed = mpi.engine.now - t0
            dup.free()
            return elapsed

        t_clean = max(mpi_run(4, world_program(clean)))
        t_frag = max(mpi_run(4, world_program(fragmented)))
        assert t_frag > t_clean

    def test_subset_consensus_via_create_group(self, mpi_run):
        def body(mpi, comm):
            group = comm.get_group().incl([0, 2])
            if comm.rank in (0, 2):
                sub = yield from comm.create_group(group, tag=7)
                total = yield from sub.allreduce(1, op=SUM)
                cid = sub.local_cid
                sub.free()
                return (total, cid)
            return None

        results = mpi_run(4, world_program(body))
        assert results[0][0] == 2
        assert results[0][1] == results[2][1]  # members agree

    def test_cid_space_bound(self):
        t = CidTable()
        with pytest.raises(MPIErrIntern):
            t.lowest_free(at_least=MAX_CID)

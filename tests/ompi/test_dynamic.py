"""Dynamic connection: open_port/publish/accept/connect (§II-C plumbing)."""

import pytest

from repro.ompi import dynamic
from repro.ompi.constants import SUM, UNDEFINED
from repro.ompi.group import Group
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


def sides(comm, n_server):
    """Sub-generator: split into server intracomm (ranks < n_server) and
    client intracomm (the rest)."""
    is_server = comm.rank < n_server
    local = yield from comm.split(color=0 if is_server else 1, key=comm.rank)
    return is_server, local


class TestConnectAccept:
    def test_basic_connect(self, mpi_run, program):
        def body(mpi, comm):
            is_server, local = yield from sides(comm, 2)
            if is_server:
                if local.rank == 0:
                    port = dynamic.open_port(mpi)
                    yield from dynamic.publish_name(mpi, "calc", port)
                else:
                    port = None
                port = yield from local.bcast(port, root=0)
                inter = yield from dynamic.comm_accept(local, port)
            else:
                if local.rank == 0:
                    port = yield from dynamic.lookup_name(mpi, "calc", timeout=1.0)
                else:
                    port = None
                port = yield from local.bcast(port, root=0)
                inter = yield from dynamic.comm_connect(local, port)
            out = (is_server, inter.local_size, inter.remote_size)
            yield from inter.barrier()
            inter.free()
            local.free()
            return out

        results = mpi_run(5, program(body))
        assert results[0] == (True, 2, 3)
        assert results[2] == (False, 3, 2)

    def test_request_response_over_connection(self, mpi_run, program):
        def body(mpi, comm):
            is_server, local = yield from sides(comm, 1)
            if is_server:
                port = dynamic.open_port(mpi)
                yield from dynamic.publish_name(mpi, "echo", port)
                inter = yield from dynamic.comm_accept(local, port)
                # Serve one request per client.
                replies = []
                for c in range(inter.remote_size):
                    req = yield from inter.recv(c, tag=1)
                    yield from inter.send(req * 10, c, tag=2)
                    replies.append(req)
                result = sorted(replies)
            else:
                port = yield from dynamic.lookup_name(mpi, "echo", timeout=1.0)
                inter = yield from dynamic.comm_connect(local, port)
                yield from inter.send(local.rank + 1, 0, tag=1)
                result = yield from inter.recv(0, tag=2)
            yield from inter.barrier()
            inter.free()
            local.free()
            return result

        results = mpi_run(4, program(body))
        assert results[0] == [1, 2, 3]
        assert results[1:] == [10, 20, 30]

    def test_lookup_times_out_without_server(self, mpi_run, program):
        from repro.pmix.types import PmixError

        def body(mpi, comm):
            try:
                yield from dynamic.lookup_name(mpi, "ghost", timeout=1e-3)
            except PmixError:
                return "timed-out"
            return "found"

        assert mpi_run(1, program(body), nodes=1) == ["timed-out"]

    def test_merge_after_connect(self, mpi_run, program):
        def body(mpi, comm):
            is_server, local = yield from sides(comm, 2)
            if is_server:
                if local.rank == 0:
                    port = dynamic.open_port(mpi)
                    yield from dynamic.publish_name(mpi, "m", port)
                else:
                    port = None
                port = yield from local.bcast(port, root=0)
                inter = yield from dynamic.comm_accept(local, port)
            else:
                if local.rank == 0:
                    port = yield from dynamic.lookup_name(mpi, "m", timeout=1.0)
                else:
                    port = None
                port = yield from local.bcast(port, root=0)
                inter = yield from dynamic.comm_connect(local, port)
            merged = yield from inter.merge(high=not is_server)
            total = yield from merged.allreduce(1, op=SUM)
            merged.free()
            inter.free()
            local.free()
            return total

        assert set(mpi_run(4, program(body))) == {4}

    def test_port_names_unique(self, mpi_run, program):
        def body(mpi, comm):
            a = dynamic.open_port(mpi)
            b = dynamic.open_port(mpi)
            return a != b
            yield  # pragma: no cover

        assert set(mpi_run(2, program(body))) == {True}

"""Point-to-point semantics over the ob1 PML, both init models."""

import pytest

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.errors import MPIErrRank, MPIErrTag
from repro.ompi.request import testall as mpi_testall
from repro.ompi.request import waitall, waitany
from repro.ompi.status import Status
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    """Run each test under both initialization models."""
    wrap = world_program if request.param == "world" else sessions_program
    return wrap


class TestBlocking:
    def test_send_recv_payload(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send({"x": [1, 2, 3]}, 1, tag=7)
                return None
            return (yield from comm.recv(0, tag=7))

        results = mpi_run(2, program(body))
        assert results[1] == {"x": [1, 2, 3]}

    def test_status_fields(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send(b"abcdef", 1, tag=9)
                return None
            status = Status()
            yield from comm.recv(ANY_SOURCE, ANY_TAG, status=status)
            return (status.source, status.tag, status.count)

        results = mpi_run(2, program(body))
        assert results[1] == (0, 9, 6)

    def test_messages_not_overtaking_same_tag(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                for i in range(10):
                    yield from comm.send(i, 1, tag=1)
                return None
            got = []
            for _ in range(10):
                got.append((yield from comm.recv(0, tag=1)))
            return got

        results = mpi_run(2, program(body))
        assert results[1] == list(range(10))

    def test_tag_selectivity(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send("low", 1, tag=1)
                yield from comm.send("high", 1, tag=2)
                return None
            high = yield from comm.recv(0, tag=2)
            low = yield from comm.recv(0, tag=1)
            return (high, low)

        results = mpi_run(2, program(body))
        assert results[1] == ("high", "low")

    def test_sendrecv_exchange(self, mpi_run, program):
        def body(mpi, comm):
            peer = 1 - comm.rank
            got = yield from comm.sendrecv(f"from{comm.rank}", peer, peer,
                                           sendtag=3, recvtag=3)
            return got

        results = mpi_run(2, program(body))
        assert results == ["from1", "from0"]


class TestNonblocking:
    def test_isend_irecv_wait(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                req = yield from comm.isend(42, 1, tag=1)
                status = yield from req.wait()
                return status.count
            req = comm.irecv(source=0, tag=1)
            yield from req.wait()
            return req.payload

        results = mpi_run(2, program(body))
        assert results[1] == 42

    def test_waitall(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                reqs = []
                for i in range(5):
                    reqs.append((yield from comm.isend(i, 1, tag=i)))
                yield from waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(5)]
            yield from waitall(reqs)
            return [r.payload for r in reqs]

        results = mpi_run(2, program(body))
        assert results[1] == [0, 1, 2, 3, 4]

    def test_waitany_returns_first(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            if comm.rank == 0:
                yield Sleep(100e-6)
                yield from comm.send("slow", 1, tag=1)
                return None
            if comm.rank == 2:
                yield from comm.send("fast", 1, tag=2)
                return None
            reqs = [comm.irecv(source=0, tag=1), comm.irecv(source=2, tag=2)]
            idx, _status = yield from waitany(reqs)
            got_first = reqs[idx].payload
            yield from reqs[0].wait()
            return (idx, got_first)

        results = mpi_run(3, program(body))
        assert results[1] == (1, "fast")

    def test_test_and_testall(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send(1, 1, tag=1)
                return None
            req = comm.irecv(source=0, tag=1)
            # Spin (simulated) until test succeeds.
            from repro.simtime.process import Sleep

            polls = 0
            while True:
                done, status = req.test()
                if done:
                    break
                polls += 1
                yield Sleep(1e-6)
            all_done, statuses = mpi_testall([req])
            return (req.payload, all_done, len(statuses))

        results = mpi_run(2, program(body))
        assert results[1] == (1, True, 1)

    def test_iprobe(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            if comm.rank == 0:
                yield from comm.send(b"xyz", 1, tag=8)
                return None
            while comm.iprobe(source=0, tag=8) is None:
                yield Sleep(1e-6)
            status = comm.iprobe(source=0, tag=8)
            payload = yield from comm.recv(0, tag=8)
            return (status.count, payload)

        results = mpi_run(2, program(body))
        assert results[1] == (3, b"xyz")


class TestValidation:
    def test_negative_user_tag_rejected(self, mpi_run, program):
        def body(mpi, comm):
            from repro.ompi.errors import MPIErrTag

            try:
                yield from comm.send(None, 0, tag=-1)
            except MPIErrTag:
                return "rejected"
            return "accepted"

        assert mpi_run(1, program(body), nodes=1) == ["rejected"]

    def test_peer_out_of_range(self, mpi_run, program):
        def body(mpi, comm):
            try:
                yield from comm.send(None, 99, tag=0)
            except MPIErrRank:
                return "rejected"
            return "accepted"

        assert mpi_run(2, program(body)) == ["rejected", "rejected"]


class TestRendezvous:
    def test_large_message_roundtrip(self, mpi_run, program):
        """Above the eager limit the rendezvous path carries the data."""
        import numpy as np

        def body(mpi, comm):
            assert mpi.machine.eager_limit < 1 << 20
            if comm.rank == 0:
                data = np.arange(1 << 18, dtype=np.float64)  # 2 MB
                yield from comm.send(data, 1, tag=1)
                return None
            got = yield from comm.recv(0, tag=1)
            return float(got.sum())

        results = mpi_run(2, program(body))
        assert results[1] == float(sum(range(1 << 18)))

    def test_rendezvous_slower_than_eager_per_byte(self, mpi_run, program):
        """An above-limit message pays the RTS/CTS round trip."""

        def body(mpi, comm):
            t = mpi.engine
            if comm.rank == 0:
                # Warm up: complete discovery and the exCID handshake so
                # the measured RTTs isolate the eager/rendezvous paths.
                yield from comm.send(None, 1, tag=1, nbytes=8)
                yield from comm.recv(1, tag=2)
                t0 = t.now
                yield from comm.send(None, 1, tag=1, nbytes=mpi.machine.eager_limit)
                yield from comm.recv(1, tag=2)
                eager_rtt = t.now - t0
                t0 = t.now
                yield from comm.send(None, 1, tag=1, nbytes=mpi.machine.eager_limit + 1)
                yield from comm.recv(1, tag=2)
                rndv_rtt = t.now - t0
                return (eager_rtt, rndv_rtt)
            for _ in range(3):
                yield from comm.recv(0, tag=1)
                yield from comm.send(None, 0, tag=2, nbytes=0)
            return None

        results = mpi_run(2, program(body))
        eager_rtt, rndv_rtt = results[0]
        assert rndv_rtt > eager_rtt

"""v-variant, reduce_scatter, split_type, and nonblocking collectives."""

import pytest

from repro.ompi.constants import MAX, SUM
from repro.ompi.errors import MPIErrArg
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


class TestVVariants:
    def test_gatherv_ragged(self, mpi_run, program):
        def body(mpi, comm):
            mine = list(range(comm.rank + 1))  # rank r contributes r+1 items
            return (yield from comm.gatherv(mine, root=0))

        results = mpi_run(4, program(body))
        assert results[0] == [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]]

    def test_scatterv_ragged(self, mpi_run, program):
        def body(mpi, comm):
            if comm.rank == 0:
                values = [["a"] * (i + 1) for i in range(comm.size)]
            else:
                values = None
            return (yield from comm.scatterv(values, root=0))

        results = mpi_run(3, program(body))
        assert results == [["a"], ["a", "a"], ["a", "a", "a"]]

    def test_scatterv_wrong_length(self, mpi_run, program):
        def body(mpi, comm):
            try:
                yield from comm.scatterv([1, 2, 3], root=0)
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert mpi_run(1, program(body), nodes=1) == ["rejected"]

    def test_allgatherv_ragged(self, mpi_run, program):
        def body(mpi, comm):
            return (yield from comm.allgatherv(bytes([comm.rank]) * (comm.rank + 1)))

        results = mpi_run(3, program(body))
        expected = [b"\x00", b"\x01\x01", b"\x02\x02\x02"]
        assert all(r == expected for r in results)

    def test_reduce_scatter_block(self, mpi_run, program):
        def body(mpi, comm):
            # Rank r contributes block j = r*10 + j.
            blocks = [comm.rank * 10 + j for j in range(comm.size)]
            return (yield from comm.reduce_scatter_block(blocks, op=SUM))

        results = mpi_run(3, program(body))
        # Rank j gets sum over r of (r*10 + j) = 30 + 3j.
        assert results == [30, 33, 36]

    def test_reduce_scatter_wrong_blocks(self, mpi_run, program):
        def body(mpi, comm):
            try:
                yield from comm.reduce_scatter_block([1], op=SUM)
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}


class TestSplitType:
    def test_shared_groups_by_node(self, mpi_run, program):
        def body(mpi, comm):
            node_comm = yield from comm.split_type("shared")
            out = (mpi.node, node_comm.size,
                   sorted(p.rank for p in node_comm.group.members()))
            yield from node_comm.barrier()
            node_comm.free()
            return out

        results = mpi_run(4, program(body), nodes=2, ppn=2)
        assert results[0] == (0, 2, [0, 1])
        assert results[3] == (1, 2, [2, 3])

    def test_unsupported_type_rejected(self, mpi_run, program):
        def body(mpi, comm):
            try:
                yield from comm.split_type("numa")
            except MPIErrArg:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}


class TestNonblockingCollectives:
    def test_ibcast(self, mpi_run, program):
        def body(mpi, comm):
            obj = "payload" if comm.rank == 0 else None
            req = yield from comm.ibcast(obj, root=0)
            yield from req.wait()
            return req.payload

        assert set(mpi_run(4, program(body))) == {"payload"}

    def test_iallreduce(self, mpi_run, program):
        def body(mpi, comm):
            req = yield from comm.iallreduce(comm.rank, op=MAX)
            yield from req.wait()
            return req.payload

        assert set(mpi_run(4, program(body))) == {3}

    def test_igather(self, mpi_run, program):
        def body(mpi, comm):
            req = yield from comm.igather(comm.rank * 2, root=1)
            yield from req.wait()
            return req.payload

        results = mpi_run(3, program(body))
        assert results[1] == [0, 2, 4]
        assert results[0] is None

    def test_iallgather(self, mpi_run, program):
        def body(mpi, comm):
            req = yield from comm.iallgather(comm.rank)
            yield from req.wait()
            return req.payload

        assert mpi_run(3, program(body)) == [[0, 1, 2]] * 3

    def test_overlap_with_pt2pt(self, mpi_run, program):
        """A nonblocking allreduce progresses while user pt2pt flows."""

        def body(mpi, comm):
            req = yield from comm.iallreduce(1, op=SUM)
            peer = (comm.rank + 1) % comm.size
            got = yield from comm.sendrecv(comm.rank, peer,
                                           (comm.rank - 1) % comm.size,
                                           sendtag=9, recvtag=9)
            yield from req.wait()
            return (req.payload, got)

        results = mpi_run(4, program(body))
        for rank, (total, got) in enumerate(results):
            assert total == 4
            assert got == (rank - 1) % 4

    def test_two_outstanding_nonblocking_collectives(self, mpi_run, program):
        def body(mpi, comm):
            r1 = yield from comm.iallreduce(1, op=SUM)
            r2 = yield from comm.iallgather(comm.rank)
            yield from r2.wait()
            yield from r1.wait()
            return (r1.payload, r2.payload)

        results = mpi_run(3, program(body))
        assert set(r[0] for r in results) == {3}
        assert all(r[1] == [0, 1, 2] for r in results)

"""Broadcast algorithm selection (binomial vs Van de Geijn)."""

import importlib

import numpy as np
import pytest

from repro.api import SimSpec, run_mpi
from repro.machine.presets import jupiter, laptop
from repro.ompi.config import MpiConfig

bcast_mod = importlib.import_module("repro.ompi.coll.bcast")


def timed_bcast(nbytes, nprocs=16, machine=None):
    def main(mpi):
        comm = yield from mpi.mpi_init()
        yield from comm.barrier()
        t0 = mpi.engine.now
        yield from comm.bcast(None, root=0, nbytes=nbytes)
        yield from comm.barrier()
        out = mpi.engine.now - t0
        yield from mpi.mpi_finalize()
        return out

    return max(run_mpi(SimSpec(nprocs=nprocs, machine=machine or jupiter(2),
                               ppn=nprocs // 2, config=MpiConfig.baseline()),
                       main))


def test_van_de_geijn_wins_for_large_messages(monkeypatch):
    vdg = timed_bcast(1 << 20)
    monkeypatch.setattr(bcast_mod, "LARGE_BCAST_THRESHOLD", 10**12)
    binomial = timed_bcast(1 << 20)
    assert vdg < binomial


def test_binomial_wins_for_small_messages(monkeypatch):
    """Forcing VdG on a tiny message costs latency (ring steps)."""
    binomial = timed_bcast(256)
    monkeypatch.setattr(bcast_mod, "LARGE_BCAST_THRESHOLD", 0)
    vdg = timed_bcast(256)
    assert binomial < vdg


def test_object_payload_without_nbytes_uses_binomial_everywhere():
    """Selection must agree on all ranks: without an explicit nbytes,
    non-roots cannot size the payload, so binomial is forced — a big
    numpy object still broadcasts correctly."""

    def main(mpi):
        comm = yield from mpi.mpi_init()
        arr = np.arange(1 << 16) if comm.rank == 0 else None  # 512 KB
        got = yield from comm.bcast(arr, root=0)
        yield from mpi.mpi_finalize()
        return int(got.sum())

    results = run_mpi(SimSpec(nprocs=4, machine=laptop(num_nodes=1), ppn=4,
                              config=MpiConfig.baseline()), main)
    assert set(results) == {sum(range(1 << 16))}


@pytest.mark.parametrize("n", [3, 4, 7, 8])
def test_vdg_correct_for_any_size(n):
    """The scatter+allgather path delivers to every rank, any comm size."""

    def main(mpi):
        comm = yield from mpi.mpi_init()
        obj = ("big", comm.rank) if comm.rank == 0 else None
        got = yield from comm.bcast(obj, root=0, nbytes=1 << 20)
        yield from mpi.mpi_finalize()
        return got

    results = run_mpi(SimSpec(nprocs=n, machine=laptop(num_nodes=2),
                              ppn=(n + 1) // 2, config=MpiConfig.baseline()), main)
    assert set(results) == {("big", 0)}


def test_vdg_nonzero_root():
    def main(mpi):
        comm = yield from mpi.mpi_init()
        obj = "from-2" if comm.rank == 2 else None
        got = yield from comm.bcast(obj, root=2, nbytes=1 << 20)
        yield from mpi.mpi_finalize()
        return got

    results = run_mpi(SimSpec(nprocs=6, machine=laptop(num_nodes=2), ppn=3,
                              config=MpiConfig.baseline()), main)
    assert set(results) == {"from-2"}

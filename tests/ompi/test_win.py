"""One-sided communication (windows), including creation from groups."""

import numpy as np
import pytest

from repro.ompi.constants import SUM
from repro.ompi.errors import MPIErrArg
from repro.ompi.win import Window
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


class TestActiveTarget:
    def test_put_visible_after_fence(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 4)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.put(np.array([1.0, 2.0]), target=1, offset=1)
            yield from win.fence()
            out = win.memory.tolist()
            yield from comm.barrier()
            win.free()
            return out

        results = mpi_run(2, program(body))
        assert results[1] == [0.0, 1.0, 2.0, 0.0]

    def test_put_not_visible_before_fence(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            win = yield from Window.allocate(comm, 2)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.put(np.array([9.0]), target=1)
                yield from comm.send(None, 1, tag=1, nbytes=0)  # "I issued it"
                yield from win.fence()
                win.free()
                return None
            yield from comm.recv(0, tag=1)
            before = win.memory[0]
            yield from win.fence()
            after = win.memory[0]
            win.free()
            return (before, after)

        results = mpi_run(2, program(body))
        assert results[1] == (0.0, 9.0)

    def test_get_after_fence(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 3)
            win.memory[:] = comm.rank + 1
            yield from win.fence()
            handle = yield from win.get(target=(comm.rank + 1) % comm.size, count=3)
            assert not handle.complete
            yield from win.fence()
            win.free()
            return handle.data.tolist()

        results = mpi_run(3, program(body))
        assert results == [[2.0] * 3, [3.0] * 3, [1.0] * 3]

    def test_accumulate_sum(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 1)
            yield from win.fence()
            yield from win.accumulate(np.array([float(comm.rank + 1)]), target=0, op=SUM)
            yield from win.fence()
            out = win.memory[0]
            yield from comm.barrier()
            win.free()
            return out

        results = mpi_run(3, program(body))
        assert results[0] == 6.0


class TestPassiveTarget:
    def test_lock_put_unlock(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            win = yield from Window.allocate(comm, 1)
            if comm.rank == 0:
                yield from win.lock(1)
                yield from win.put(np.array([7.0]), target=1)
                yield from win.unlock(1)
                yield from comm.send(None, 1, tag=1, nbytes=0)
                yield from comm.barrier()
                win.free()
                return None
            yield from comm.recv(0, tag=1)
            out = win.memory[0]
            yield from comm.barrier()
            win.free()
            return out

        results = mpi_run(2, program(body))
        assert results[1] == 7.0

    def test_unlock_wrong_target_rejected(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 1)
            yield from win.lock(0)
            try:
                yield from win.unlock(1 % comm.size)
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from win.unlock(0)
            yield from comm.barrier()
            win.free()
            return result

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_double_lock_rejected(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 1)
            yield from win.lock(0)
            try:
                yield from win.lock(0)
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from win.unlock(0)
            yield from comm.barrier()
            win.free()
            return result

        assert set(mpi_run(2, program(body))) == {"rejected"}


class TestValidation:
    def test_out_of_bounds_rejected(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 2)
            try:
                yield from win.put(np.array([1.0, 2.0, 3.0]), target=0)
            except MPIErrArg:
                result = "rejected"
            else:
                result = "accepted"
            yield from win.fence()
            yield from comm.barrier()
            win.free()
            return result

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_free_with_pending_ops_rejected(self, mpi_run, program):
        def body(mpi, comm):
            win = yield from Window.allocate(comm, 1)
            yield from win.put(np.array([1.0]), target=0)
            try:
                win.free()
            except MPIErrArg:
                result = "rejected"
                yield from win.fence()
                yield from comm.barrier()
                win.free()
            else:
                result = "accepted"
            return result

        assert set(mpi_run(2, program(body))) == {"rejected"}


class TestFromGroup:
    def test_window_from_group(self, mpi_run):
        """Paper §III-B6: window creation via intermediate communicator."""

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            win = yield from Window.create_from_group(mpi, group, "wtest", count=2)
            yield from win.fence()
            if win.rank == 0:
                for t in range(1, win.size):
                    yield from win.put(np.array([float(t), float(t)]), target=t)
            yield from win.fence()
            out = win.memory.tolist()
            # The intermediate comm is already gone; only the window's
            # internal dup is alive — finalize must complain about it.
            win.free()
            yield from session.finalize()
            return out

        results = mpi_run(3, main, sessions=True)
        assert results == [[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]

    def test_window_subgroup(self, mpi_run):
        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            if mpi.rank_in_job < 2:
                pair = group.incl([0, 1])
                pair.session = session
                win = yield from Window.create_from_group(mpi, pair, "pair", count=1)
                yield from win.fence()
                yield from win.accumulate(np.array([1.0]), target=0, op=SUM)
                yield from win.fence()
                out = win.memory[0]
                win.free()
            else:
                out = None
            yield from session.finalize()
            return out

        results = mpi_run(4, main, sessions=True)
        assert results[0] == 2.0
        assert results[2:] == [None, None]

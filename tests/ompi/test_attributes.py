"""Attribute keyvals and caching, including dup propagation."""

import pytest

from repro.ompi.attributes import DUP_FN, NULL_COPY_FN, AttributeCache, KeyvalRegistry
from repro.ompi.errors import MPIErrArg
from tests.ompi.conftest import world_program


class TestKeyvalRegistry:
    def test_create_distinct_ids(self):
        reg = KeyvalRegistry()
        assert reg.create() != reg.create()

    def test_free_unknown_rejected(self):
        with pytest.raises(MPIErrArg):
            KeyvalRegistry().free(12345)

    def test_free_removes(self):
        reg = KeyvalRegistry()
        kv = reg.create()
        reg.free(kv)
        assert not reg.known(kv)


class TestAttributeCache:
    def make(self):
        reg = KeyvalRegistry()
        return reg, AttributeCache(reg)

    def test_set_get_delete(self):
        reg, cache = self.make()
        kv = reg.create()
        cache.set(kv, "v")
        assert cache.get(kv) == (True, "v")
        cache.delete(kv)
        assert cache.get(kv) == (False, None)

    def test_unknown_keyval_rejected(self):
        _reg, cache = self.make()
        with pytest.raises(MPIErrArg):
            cache.set(999, "v")
        with pytest.raises(MPIErrArg):
            cache.get(999)

    def test_delete_unset_rejected(self):
        reg, cache = self.make()
        kv = reg.create()
        with pytest.raises(MPIErrArg):
            cache.delete(kv)

    def test_null_copy_does_not_propagate(self):
        reg, cache = self.make()
        kv = reg.create(copy_fn=NULL_COPY_FN)
        cache.set(kv, "v")
        assert cache.copy_for_dup().get(kv) == (False, None)

    def test_dup_fn_propagates_by_reference(self):
        reg, cache = self.make()
        kv = reg.create(copy_fn=DUP_FN)
        value = {"shared": True}
        cache.set(kv, value)
        found, copied = cache.copy_for_dup().get(kv)
        assert found and copied is value

    def test_custom_copy_fn_transforms(self):
        reg, cache = self.make()
        kv = reg.create(copy_fn=lambda k, v: (True, v + 1))
        cache.set(kv, 10)
        assert cache.copy_for_dup().get(kv) == (True, 11)

    def test_delete_fn_runs_on_overwrite_and_clear(self):
        reg, cache = self.make()
        deleted = []
        kv = reg.create(delete_fn=lambda k, v: deleted.append(v))
        cache.set(kv, "first")
        cache.set(kv, "second")      # overwrite triggers delete("first")
        cache.clear()                # clear triggers delete("second")
        assert deleted == ["first", "second"]

    def test_len(self):
        reg, cache = self.make()
        kv = reg.create()
        assert len(cache) == 0
        cache.set(kv, 1)
        assert len(cache) == 1


class TestCommAttributes:
    def test_attrs_follow_dup_rules(self, mpi_run):
        def body(mpi, comm):
            kv_keep = mpi.keyvals.create(copy_fn=DUP_FN)
            kv_drop = mpi.keyvals.create()  # default: null copy
            comm.set_attr(kv_keep, "kept")
            comm.set_attr(kv_drop, "dropped")
            dup = yield from comm.dup()
            out = (dup.get_attr(kv_keep), dup.get_attr(kv_drop))
            dup.free()
            comm.delete_attr(kv_keep)
            comm.delete_attr(kv_drop)
            return out

        results = mpi_run(2, world_program(body))
        assert set(results) == {((True, "kept"), (False, None))}

"""MPI_Info semantics — usable before initialization (paper §III-B5)."""

import pytest

from repro.ompi.errors import MPIErrArg
from repro.ompi.info import MAX_INFO_KEY, MAX_INFO_VAL, Info


class TestBasics:
    def test_set_get(self):
        info = Info()
        info.set("mpi_assert_no_any_tag", "true")
        assert info.get("mpi_assert_no_any_tag") == "true"

    def test_get_missing_returns_none(self):
        assert Info().get("nope") is None

    def test_overwrite(self):
        info = Info()
        info.set("k", "a")
        info.set("k", "b")
        assert info.get("k") == "b"
        assert info.get_nkeys() == 1

    def test_delete(self):
        info = Info({"k": "v"})
        info.delete("k")
        assert info.get("k") is None

    def test_delete_missing_raises(self):
        with pytest.raises(MPIErrArg):
            Info().delete("nope")

    def test_nkeys_and_nthkey_in_insertion_order(self):
        info = Info()
        for k in ("one", "two", "three"):
            info.set(k, "x")
        assert info.get_nkeys() == 3
        assert [info.get_nthkey(i) for i in range(3)] == ["one", "two", "three"]

    def test_nthkey_out_of_range(self):
        with pytest.raises(MPIErrArg):
            Info({"a": "1"}).get_nthkey(1)

    def test_contains_len_keys(self):
        info = Info({"a": "1", "b": "2"})
        assert "a" in info and "c" not in info
        assert len(info) == 2
        assert info.keys() == ["a", "b"]


class TestDup:
    def test_dup_copies(self):
        info = Info({"a": "1"})
        dup = info.dup()
        dup.set("b", "2")
        assert "b" not in info

    def test_dup_after_free_rejected(self):
        info = Info()
        info.free()
        with pytest.raises(MPIErrArg):
            info.dup()


class TestLimitsAndFree:
    def test_key_length_limit(self):
        with pytest.raises(MPIErrArg):
            Info().set("k" * (MAX_INFO_KEY + 1), "v")

    def test_value_length_limit(self):
        with pytest.raises(MPIErrArg):
            Info().set("k", "v" * (MAX_INFO_VAL + 1))

    def test_empty_key_rejected(self):
        with pytest.raises(MPIErrArg):
            Info().set("", "v")

    def test_non_string_value_rejected(self):
        with pytest.raises(MPIErrArg):
            Info().set("k", 42)

    def test_use_after_free(self):
        info = Info({"k": "v"})
        info.free()
        for op in (lambda: info.get("k"), lambda: info.set("k", "v"),
                   lambda: info.get_nkeys(), lambda: info.free()):
            with pytest.raises(MPIErrArg):
                op()


def test_info_works_without_any_mpi_state():
    """The whole point: Info needs no initialized library."""
    info = Info()
    info.set("thread_level", "MPI_THREAD_MULTIPLE")
    assert info.dup().get("thread_level") == "MPI_THREAD_MULTIPLE"

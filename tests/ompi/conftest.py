"""Helpers for MPI-level integration tests."""

from __future__ import annotations

import pytest

from repro.api import SimSpec, run_mpi
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig


@pytest.fixture
def mpi_run():
    """Run a rank program on a small laptop cluster; returns results."""

    def _run(nprocs, fn, *, sessions=False, nodes=2, ppn=None, config=None, **kw):
        if config is None:
            needs_sessions = sessions or getattr(fn, "_needs_sessions", False)
            config = MpiConfig.sessions_prototype() if needs_sessions else MpiConfig.baseline()
        return run_mpi(
            spec=SimSpec(
                nprocs=nprocs,
                machine=laptop(num_nodes=nodes),
                ppn=ppn or max(1, (nprocs + nodes - 1) // nodes),
                config=config,
                psets=kw.pop("psets", None),
            ),
            main=fn,
            **kw,
        )

    return _run


def world_program(body):
    """Wrap ``body(mpi, comm)`` with MPI_Init/Finalize."""

    def main(mpi):
        comm = yield from mpi.mpi_init()
        result = yield from body(mpi, comm)
        yield from mpi.mpi_finalize()
        return result

    return main


def sessions_program(body, tag="test"):
    """Wrap ``body(mpi, comm)`` with the sessions bootstrap."""

    def main(mpi):
        session = yield from mpi.session_init()
        group = yield from session.group_from_pset("mpi://world")
        comm = yield from mpi.comm_create_from_group(group, tag)
        result = yield from body(mpi, comm)
        comm.free()
        yield from session.finalize()
        return result

    main._needs_sessions = True
    return main

"""White-box tests of the ob1 exCID handshake (paper §III-B4)."""

import pytest

from repro.ompi.constants import SUM
from tests.ompi.conftest import sessions_program, world_program


class TestHandshake:
    def test_first_message_extended_then_switch(self, mpi_run):
        def body(mpi, comm):
            for _ in range(5):
                if comm.rank == 0:
                    yield from comm.send(None, 1, tag=1, nbytes=8)
                    yield from comm.recv(1, tag=2)
                else:
                    yield from comm.recv(0, tag=1)
                    yield from comm.send(None, 0, tag=2, nbytes=8)
            return dict(mpi.endpoint.stats)

        stats = mpi_run(2, sessions_program(body))
        # Rank 0 sent exactly one extended message, then switched.
        assert stats[0]["ext_sent"] == 1
        assert stats[0]["sent"] == 5
        # Rank 1 learned rank 0's CID from the extended header, so its
        # replies never needed the extension; it ACKed exactly once.
        assert stats[1]["ext_sent"] == 0
        assert stats[1]["acks"] == 1

    def test_wpm_never_uses_extended_headers(self, mpi_run):
        def body(mpi, comm):
            if comm.rank == 0:
                yield from comm.send(None, 1, tag=1, nbytes=8)
            else:
                yield from comm.recv(0, tag=1)
            return dict(mpi.endpoint.stats)

        stats = mpi_run(2, world_program(body))
        assert stats[0]["ext_sent"] == 0
        assert stats[1]["ext_recv"] == 0

    def test_peer_cids_learned_per_communicator(self, mpi_run):
        def body(mpi, comm):
            dup = yield from comm.dup()
            if comm.rank == 0:
                yield from comm.send(None, 1, tag=1, nbytes=8)
                yield from dup.send(None, 1, tag=1, nbytes=8)
            else:
                yield from comm.recv(0, tag=1)
                yield from dup.recv(0, tag=1)
            yield from comm.barrier()
            out = (len(comm.peer_cids) > 0, len(dup.peer_cids) > 0,
                   comm.excid.key() != dup.excid.key())
            dup.free()
            return out

        results = mpi_run(2, sessions_program(body))
        assert results[1] == (True, True, True)

    def test_always_extended_config(self, mpi_run):
        from repro.ompi.config import MpiConfig

        config = MpiConfig.sessions_prototype()
        config.excid_always_extended = True

        def body(mpi, comm):
            for _ in range(4):
                if comm.rank == 0:
                    yield from comm.send(None, 1, tag=1, nbytes=8)
                else:
                    yield from comm.recv(0, tag=1)
            yield from comm.barrier()
            return dict(mpi.endpoint.stats)

        stats = mpi_run(2, sessions_program(body), config=config)
        assert stats[0]["ext_sent"] >= 4

    def test_early_packet_stash(self, mpi_run):
        """A message can arrive before the receiver registered the
        communicator; it is stashed and replayed on registration."""

        def main(mpi):
            from repro.simtime.process import Sleep

            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(group, "early")
            if mpi.rank_in_job == 0:
                # Fire immediately after construct returns here.
                yield from comm.send("early-bird", 1, tag=1, nbytes=16)
            else:
                yield Sleep(50e-6)  # simulate a slow rank
                got = yield from comm.recv(0, tag=1)
                comm.free()
                yield from session.finalize()
                return got
            comm.free()
            yield from session.finalize()
            return None

        results = mpi_run(2, main, sessions=True)
        assert results[1] == "early-bird"


class TestSessionsVsWorldEquivalence:
    def test_steady_state_latency_close(self, mpi_run):
        """Post-handshake, sessions latency ~= baseline latency (Fig 5a)."""

        def body(mpi, comm):
            # Warm up (completes handshake where applicable).
            for _ in range(3):
                if comm.rank == 0:
                    yield from comm.send(None, 1, tag=1, nbytes=8)
                    yield from comm.recv(1, tag=1)
                else:
                    yield from comm.recv(0, tag=1)
                    yield from comm.send(None, 0, tag=1, nbytes=8)
            t0 = mpi.engine.now
            for _ in range(20):
                if comm.rank == 0:
                    yield from comm.send(None, 1, tag=1, nbytes=8)
                    yield from comm.recv(1, tag=1)
                else:
                    yield from comm.recv(0, tag=1)
                    yield from comm.send(None, 0, tag=1, nbytes=8)
            return mpi.engine.now - t0

        base = mpi_run(2, world_program(body))[0]
        sess = mpi_run(2, sessions_program(body))[0]
        assert sess == pytest.approx(base, rel=0.05)

    def test_collectives_identical_results(self, mpi_run):
        def body(mpi, comm):
            return (yield from comm.allreduce(comm.rank + 1, op=SUM))

        assert mpi_run(4, world_program(body)) == mpi_run(4, sessions_program(body))

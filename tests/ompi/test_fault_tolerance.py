"""Fault-tolerance scenarios from paper §II-C.

* Roll-forward: after a process failure, survivors re-initialize MPI
  (a fresh session) and continue with whatever resources remain —
  "redistributing application data is then entirely under user
  control".
* Isolation: a failure inside one session's communicator does not
  poison a different session.
"""

import pytest

from repro.api import SimSpec, make_world
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.ompi.group import Group
from repro.pmix.types import PMIX_ERR_PROC_TERMINATED
from repro.simtime.process import Sleep


def test_roll_forward_after_failure():
    """4 ranks start a computation; rank 2 dies; the survivors build a
    new communicator over the living processes and finish the job."""
    world = make_world(spec=SimSpec(
        nprocs=4, machine=laptop(num_nodes=2), ppn=2,
        config=MpiConfig.sessions_prototype(),
    ))
    phase1_done = []
    results = {}

    def survivor(mpi):
        dead = set()
        # A long-lived "monitor" session keeps PMIx (and the failure
        # event registration) alive across the compute epochs —
        # finalizing the *last* session would tear the client down and
        # drop the registration with it.
        s_monitor = yield from mpi.session_init()
        mpi.pmix.register_event_handler(
            [PMIX_ERR_PROC_TERMINATED], lambda code, src, info: dead.add(src.rank)
        )
        # --- epoch 1: everyone computes together -----------------------
        s1 = yield from mpi.session_init()
        g1 = yield from s1.group_from_pset("mpi://world")
        c1 = yield from mpi.comm_create_from_group(g1, "epoch1")
        total1 = yield from c1.allreduce(1, op=SUM)
        phase1_done.append(mpi.rank_in_job)
        c1.free()
        yield from s1.finalize()

        # Wait until the failure notice arrives (delivered via PMIx events).
        while not dead:
            yield Sleep(50e-6)

        # --- epoch 2: roll forward with the survivors ------------------
        s2 = yield from mpi.session_init()
        alive = [mpi.job.proc(r) for r in range(4) if r not in dead]
        g2 = Group(alive)
        g2.session = s2
        c2 = yield from mpi.comm_create_from_group(g2, "epoch2")
        total2 = yield from c2.allreduce(1, op=SUM)
        c2.free()
        yield from s2.finalize()
        yield from s_monitor.finalize()
        results[mpi.rank_in_job] = (total1, total2, sorted(dead))
        return "survived"

    def victim(mpi):
        s1 = yield from mpi.session_init()
        g1 = yield from s1.group_from_pset("mpi://world")
        c1 = yield from mpi.comm_create_from_group(g1, "epoch1")
        yield from c1.allreduce(1, op=SUM)
        c1.free()
        yield from s1.finalize()
        yield Sleep(1e9)  # then hangs until killed

    procs = {}
    for rank in (0, 1, 3):
        procs[rank] = world.cluster.spawn(survivor(world.runtimes[rank]), f"r{rank}")
    procs[2] = world.cluster.spawn(victim(world.runtimes[2]), "victim")
    for p in procs.values():
        p.defuse()

    def chaos():
        while len(phase1_done) < 3:
            yield Sleep(50e-6)
        yield Sleep(200e-6)
        world.cluster.fail_process(world.job, 2, procs[2])

    world.cluster.spawn(chaos(), "chaos")
    world.run()

    for rank in (0, 1, 3):
        assert procs[rank].result == "survived"
        total1, total2, dead = results[rank]
        assert total1 == 4          # epoch 1 used all four ranks
        assert total2 == 3          # epoch 2 rolled forward with three
        assert dead == [2]


def test_session_isolation_under_failure():
    """Two sessions per rank; killing a peer that only participates in
    session B's communicator leaves session A fully usable."""
    world = make_world(spec=SimSpec(
        nprocs=3, machine=laptop(num_nodes=1), ppn=3,
        config=MpiConfig.sessions_prototype(),
    ))
    out = {}
    ready = []

    def stable_pair(mpi):
        """Ranks 0 and 1: session A over {0,1}, session B over everyone."""
        dead = set()
        yield from mpi.pmix.init()
        mpi.pmix.register_event_handler(
            [PMIX_ERR_PROC_TERMINATED], lambda code, src, info: dead.add(src.rank)
        )
        sa = yield from mpi.session_init()
        ga = Group([mpi.job.proc(0), mpi.job.proc(1)])
        ga.session = sa
        ca = yield from mpi.comm_create_from_group(ga, "A")

        sb = yield from mpi.session_init()
        gb = yield from sb.group_from_pset("mpi://world")
        cb = yield from mpi.comm_create_from_group(gb, "B")
        yield from cb.allreduce(1, op=SUM)
        ready.append(mpi.rank_in_job)

        while not dead:
            yield Sleep(50e-6)
        # Session B's world is damaged; session A keeps working.
        for _ in range(3):
            total_a = yield from ca.allreduce(1, op=SUM)
        out[mpi.rank_in_job] = total_a
        ca.free()
        yield from sa.finalize()
        cb.free()
        yield from sb.finalize()
        return "ok"

    def victim(mpi):
        sb = yield from mpi.session_init()
        gb = yield from sb.group_from_pset("mpi://world")
        cb = yield from mpi.comm_create_from_group(gb, "B")
        yield from cb.allreduce(1, op=SUM)
        yield Sleep(1e9)

    procs = {
        0: world.cluster.spawn(stable_pair(world.runtimes[0]), "r0"),
        1: world.cluster.spawn(stable_pair(world.runtimes[1]), "r1"),
        2: world.cluster.spawn(victim(world.runtimes[2]), "victim"),
    }
    for p in procs.values():
        p.defuse()

    def chaos():
        while len(ready) < 2:
            yield Sleep(50e-6)
        yield Sleep(100e-6)
        world.cluster.fail_process(world.job, 2, procs[2])

    world.cluster.spawn(chaos(), "chaos")
    world.run()

    assert procs[0].result == "ok" and procs[1].result == "ok"
    assert out[0] == 2 and out[1] == 2

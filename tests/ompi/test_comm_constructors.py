"""Communicator constructors: dup/split/create/create_group in both CID
modes, plus the Sessions-only create_from_group."""

import pytest

from repro.ompi.constants import MAX, SUM, UNDEFINED
from repro.ompi.errors import MPIErrComm, MPIErrGroup
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


class TestDup:
    def test_dup_isolates_traffic(self, mpi_run, program):
        """A message on the dup never matches a receive on the parent."""

        def body(mpi, comm):
            from repro.simtime.process import Sleep

            dup = yield from comm.dup()
            if comm.rank == 0:
                yield from dup.send("on-dup", 1, tag=5)
                yield from comm.send("on-parent", 1, tag=5)
                yield from comm.barrier()
                dup.free()
                return None
            parent_msg = yield from comm.recv(0, tag=5)
            dup_msg = yield from dup.recv(0, tag=5)
            yield from comm.barrier()
            dup.free()
            return (parent_msg, dup_msg)

        results = mpi_run(2, program(body))
        assert results[1] == ("on-parent", "on-dup")

    def test_dup_copies_errhandler(self, mpi_run, program):
        from repro.ompi.errors import ERRORS_RETURN

        def body(mpi, comm):
            comm.set_errhandler(ERRORS_RETURN)
            dup = yield from comm.dup()
            same = dup.errhandler is ERRORS_RETURN
            dup.free()
            return same

        assert set(mpi_run(2, program(body))) == {True}

    def test_dup_chain(self, mpi_run, program):
        def body(mpi, comm):
            comms = [comm]
            for _ in range(4):
                comms.append((yield from comms[-1].dup()))
            total = yield from comms[-1].allreduce(1, op=SUM)
            for c in comms[:0:-1]:
                c.free()
            return total

        assert set(mpi_run(3, program(body))) == {3}

    def test_dup_excids_unique_per_generation(self, mpi_run):
        def body(mpi, comm):
            dups = []
            for _ in range(6):
                dups.append((yield from comm.dup()))
            keys = {d.excid.key() for d in dups} | {comm.excid.key()}
            for d in dups:
                d.free()
            return len(keys)

        results = mpi_run(2, sessions_program(body))
        assert set(results) == {7}


class TestSplit:
    def test_split_by_parity(self, mpi_run, program):
        def body(mpi, comm):
            sub = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            out = (sub.rank, sub.size, (yield from sub.allreduce(comm.rank, op=SUM)))
            sub.free()
            return out

        results = mpi_run(6, program(body))
        for world_rank, (sub_rank, sub_size, total) in enumerate(results):
            assert sub_size == 3
            assert sub_rank == world_rank // 2
            expected = sum(r for r in range(6) if r % 2 == world_rank % 2)
            assert total == expected

    def test_split_key_reorders_ranks(self, mpi_run, program):
        def body(mpi, comm):
            # Reverse the rank order via the key.
            sub = yield from comm.split(color=0, key=-comm.rank)
            out = sub.rank
            sub.free()
            return out

        results = mpi_run(4, program(body))
        assert results == [3, 2, 1, 0]

    def test_split_undefined_gets_none(self, mpi_run, program):
        def body(mpi, comm):
            color = 0 if comm.rank == 0 else UNDEFINED
            sub = yield from comm.split(color=color, key=0)
            if sub is not None:
                assert sub.size == 1
                sub.free()
                return "member"
            return "excluded"

        results = mpi_run(3, program(body))
        assert results == ["member", "excluded", "excluded"]


class TestCreate:
    def test_create_group_members_only(self, mpi_run, program):
        def body(mpi, comm):
            evens = comm.get_group().incl(list(range(0, comm.size, 2)))
            if comm.rank % 2 == 0:
                sub = yield from comm.create_group(evens, tag=1)
                total = yield from sub.allreduce(1, op=SUM)
                sub.free()
                return total
            return None

        results = mpi_run(6, program(body))
        assert results == [3, None, 3, None, 3, None]

    def test_create_group_nonmember_rejected(self, mpi_run, program):
        def body(mpi, comm):
            others = comm.get_group().excl([comm.rank])
            try:
                yield from comm.create_group(others, tag=1)
            except MPIErrGroup:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_create_all_ranks_call(self, mpi_run, program):
        def body(mpi, comm):
            first_two = comm.get_group().incl([0, 1])
            sub = yield from comm.create(first_two)
            if comm.rank < 2:
                assert sub is not None
                value = yield from sub.allreduce(comm.rank, op=MAX)
                sub.free()
                return value
            assert sub is None
            return None

        results = mpi_run(4, program(body))
        assert results == [1, 1, None, None]


class TestCreateFromGroup:
    def test_requires_excid_mode(self, mpi_run):
        def main(mpi):
            comm = yield from mpi.mpi_init()
            try:
                yield from mpi.comm_create_from_group(comm.get_group(), "t")
            except MPIErrComm:
                result = "rejected"
            else:
                result = "accepted"
            yield from mpi.mpi_finalize()
            return result

        assert set(mpi_run(2, main)) == {"rejected"}

    def test_subgroup_comm(self, mpi_run):
        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            if mpi.rank_in_job < 2:
                sub = group.incl([0, 1])
                sub.session = session
                comm = yield from mpi.comm_create_from_group(sub, "pair")
                total = yield from comm.allreduce(1, op=SUM)
                comm.free()
            else:
                total = None
            yield from session.finalize()
            return total

        results = mpi_run(4, main, sessions=True)
        assert results == [2, 2, None, None]

    def test_concurrent_disjoint_creates_same_tag(self, mpi_run):
        """Disjoint groups may use the same stringtag concurrently."""

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            half = group.incl([0, 1]) if mpi.rank_in_job < 2 else group.incl([2, 3])
            half.session = session
            comm = yield from mpi.comm_create_from_group(half, "same-tag")
            total = yield from comm.allreduce(mpi.rank_in_job, op=SUM)
            comm.free()
            yield from session.finalize()
            return total

        results = mpi_run(4, main, sessions=True)
        assert results == [1, 1, 5, 5]

    def test_members_agree_on_excid_but_not_local_cid(self, mpi_run):
        """The paper's decoupling: exCIDs agree globally, local CIDs are
        free to differ between processes (§III-B3)."""

        def main(mpi):
            session = yield from mpi.session_init()
            group = yield from session.group_from_pset("mpi://world")
            # Stagger local CID spaces: rank 1 burns extra slots first.
            if mpi.rank_in_job == 1:
                placeholders = []
                for i in range(3):
                    mpi.cid_table.reserve(mpi.cid_table.lowest_free(), object())
            comm = yield from mpi.comm_create_from_group(group, "decouple")
            out = (comm.excid.key(), comm.local_cid)
            pair = yield from comm.allgather(out)
            comm.free()
            yield from session.finalize()
            return pair

        results = mpi_run(2, main, sessions=True)
        (excid0, cid0), (excid1, cid1) = results[0]
        assert excid0 == excid1
        assert cid0 != cid1


class TestFree:
    def test_use_after_free_rejected(self, mpi_run, program):
        def body(mpi, comm):
            dup = yield from comm.dup()
            dup.free()
            try:
                yield from dup.barrier()
            except MPIErrComm:
                return "rejected"
            return "accepted"

        assert set(mpi_run(2, program(body))) == {"rejected"}

    def test_consensus_cid_reused_after_free(self, mpi_run):
        def body(mpi, comm):
            a = yield from comm.dup()
            first_cid = a.local_cid
            a.free()
            b = yield from comm.dup()
            second_cid = b.local_cid
            b.free()
            return first_cid == second_cid

        assert set(mpi_run(2, world_program(body))) == {True}

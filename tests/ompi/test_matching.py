"""Matching engine unit tests: MPI matching rules in isolation."""

import pytest

from repro.ompi.constants import ANY_SOURCE, ANY_TAG
from repro.ompi.errors import MPIErrPending
from repro.ompi.pml.matching import IncomingMsg, MatchingEngine, PostedRecv


def msg(src=0, tag=0, seq=0, nbytes=8, payload=None):
    return IncomingMsg(src=src, tag=tag, seq=seq, nbytes=nbytes, payload=payload)


def recv(src=ANY_SOURCE, tag=ANY_TAG):
    return PostedRecv(src=src, tag=tag, request=object())


class TestBasicMatching:
    def test_recv_then_msg(self):
        eng = MatchingEngine()
        posted = recv(src=1, tag=5)
        assert eng.post_recv(0, posted) is None
        matched = eng.incoming(0, msg(src=1, tag=5))
        assert matched is posted

    def test_msg_then_recv(self):
        eng = MatchingEngine()
        m = msg(src=1, tag=5, payload="data")
        assert eng.incoming(0, m) is None
        got = eng.post_recv(0, recv(src=1, tag=5))
        assert got is m
        assert eng.unexpected_hits == 1

    def test_wrong_tag_no_match(self):
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=1, tag=5))
        assert eng.incoming(0, msg(src=1, tag=6)) is None
        assert eng.pending_posted(0) == 1
        assert eng.pending_unexpected(0) == 1

    def test_wrong_source_no_match(self):
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=1, tag=5))
        assert eng.incoming(0, msg(src=2, tag=5)) is None

    def test_comms_isolated_by_cid(self):
        eng = MatchingEngine()
        eng.post_recv(1, recv(src=0, tag=0))
        assert eng.incoming(2, msg(src=0, tag=0)) is None
        assert eng.pending_posted(1) == 1


class TestWildcards:
    def test_any_source(self):
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=ANY_SOURCE, tag=5))
        assert eng.incoming(0, msg(src=3, tag=5)) is not None

    def test_any_tag_matches_user_tags(self):
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=1, tag=ANY_TAG))
        assert eng.incoming(0, msg(src=1, tag=123)) is not None

    def test_any_tag_never_matches_internal_tags(self):
        """Collective traffic (negative tags) is invisible to ANY_TAG."""
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=1, tag=ANY_TAG))
        assert eng.incoming(0, msg(src=1, tag=-11)) is None

    def test_explicit_negative_tag_matches(self):
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=1, tag=-11))
        assert eng.incoming(0, msg(src=1, tag=-11)) is not None


class TestOrdering:
    def test_unexpected_fifo(self):
        """A receive takes the EARLIEST compatible unexpected message."""
        eng = MatchingEngine()
        first = msg(src=1, tag=5, seq=0, payload="first")
        second = msg(src=1, tag=5, seq=1, payload="second")
        eng.incoming(0, first)
        eng.incoming(0, second)
        assert eng.post_recv(0, recv(src=1, tag=5)) is first
        assert eng.post_recv(0, recv(src=1, tag=5)) is second

    def test_posted_fifo(self):
        """A message matches the EARLIEST compatible posted receive."""
        eng = MatchingEngine()
        r1, r2 = recv(src=1, tag=5), recv(src=1, tag=5)
        eng.post_recv(0, r1)
        eng.post_recv(0, r2)
        assert eng.incoming(0, msg(src=1, tag=5)) is r1
        assert eng.incoming(0, msg(src=1, tag=5)) is r2

    def test_any_source_respects_arrival_order(self):
        eng = MatchingEngine()
        eng.incoming(0, msg(src=2, tag=5, payload="from2"))
        eng.incoming(0, msg(src=1, tag=5, payload="from1"))
        got = eng.post_recv(0, recv(src=ANY_SOURCE, tag=5))
        assert got.payload == "from2"

    def test_specific_recv_skips_incompatible_earlier(self):
        eng = MatchingEngine()
        eng.incoming(0, msg(src=2, tag=5))
        target = msg(src=1, tag=5)
        eng.incoming(0, target)
        assert eng.post_recv(0, recv(src=1, tag=5)) is target
        assert eng.pending_unexpected(0) == 1


class TestProbeAndCleanup:
    def test_probe_nondestructive(self):
        eng = MatchingEngine()
        eng.incoming(0, msg(src=1, tag=5))
        assert eng.probe(0, 1, 5) is not None
        assert eng.pending_unexpected(0) == 1

    def test_probe_miss(self):
        eng = MatchingEngine()
        assert eng.probe(0, 1, 5) is None

    def test_drop_empty_comm(self):
        eng = MatchingEngine()
        posted = recv(src=1, tag=5)
        eng.post_recv(0, posted)
        eng.incoming(0, msg(src=1, tag=5))
        eng.drop_comm(0)  # queues drained by the match

    def test_drop_with_pending_posted_raises(self):
        eng = MatchingEngine()
        eng.post_recv(0, recv(src=1, tag=5))
        with pytest.raises(MPIErrPending):
            eng.drop_comm(0)

    def test_drop_with_pending_unexpected_raises(self):
        eng = MatchingEngine()
        eng.incoming(0, msg(src=1, tag=5))
        with pytest.raises(MPIErrPending):
            eng.drop_comm(0)

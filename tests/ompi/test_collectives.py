"""Collective operations across sizes, roots, and both init models."""

import numpy as np
import pytest

from repro.ompi.constants import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM
from tests.ompi.conftest import sessions_program, world_program


@pytest.fixture(params=["world", "sessions"])
def program(request):
    return world_program if request.param == "world" else sessions_program


NPROCS = [2, 3, 5, 8]


class TestBcast:
    @pytest.mark.parametrize("n", NPROCS)
    def test_all_ranks_receive(self, mpi_run, program, n):
        def body(mpi, comm):
            obj = {"data": list(range(10))} if comm.rank == 0 else None
            return (yield from comm.bcast(obj, root=0))

        results = mpi_run(n, program(body))
        assert all(r == {"data": list(range(10))} for r in results)

    def test_nonzero_root(self, mpi_run, program):
        def body(mpi, comm):
            obj = "from-root-3" if comm.rank == 3 else None
            return (yield from comm.bcast(obj, root=3))

        assert set(mpi_run(5, program(body))) == {"from-root-3"}

    def test_large_array(self, mpi_run, program):
        def body(mpi, comm):
            arr = np.arange(1 << 16) if comm.rank == 0 else None
            got = yield from comm.bcast(arr, root=0)
            return int(got.sum())

        results = mpi_run(4, program(body))
        assert set(results) == {sum(range(1 << 16))}


class TestReduceAllreduce:
    @pytest.mark.parametrize("n", NPROCS)
    def test_reduce_sum_at_root(self, mpi_run, program, n):
        def body(mpi, comm):
            return (yield from comm.reduce(comm.rank + 1, op=SUM, root=0))

        results = mpi_run(n, program(body))
        assert results[0] == n * (n + 1) // 2
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("n", NPROCS)
    def test_allreduce_everyone(self, mpi_run, program, n):
        def body(mpi, comm):
            return (yield from comm.allreduce(comm.rank, op=MAX))

        assert set(mpi_run(n, program(body))) == {n - 1}

    @pytest.mark.parametrize(
        "op,contrib,expected",
        [
            (SUM, lambda r, n: r, lambda n: sum(range(n))),
            (PROD, lambda r, n: r + 1, lambda n: np.prod(range(1, n + 1))),
            (MIN, lambda r, n: 10 - r, lambda n: 10 - (n - 1)),
            (LAND, lambda r, n: 1, lambda n: True),
            (LOR, lambda r, n: 1 if r == 0 else 0, lambda n: True),
            (BAND, lambda r, n: 0b1111, lambda n: 0b1111),
            (BOR, lambda r, n: 1 << r, lambda n: (1 << n) - 1),
        ],
    )
    def test_allreduce_ops(self, mpi_run, program, op, contrib, expected):
        n = 4

        def body(mpi, comm):
            return (yield from comm.allreduce(contrib(comm.rank, n), op=op))

        assert set(mpi_run(n, program(body))) == {expected(n)}

    def test_maxloc_minloc(self, mpi_run, program):
        def body(mpi, comm):
            values = [3, 9, 9, 1]
            pair = (values[comm.rank], comm.rank)
            mx = yield from comm.allreduce(pair, op=MAXLOC)
            mn = yield from comm.allreduce(pair, op=MINLOC)
            return (mx, mn)

        results = mpi_run(4, program(body))
        # Ties break toward the lower index.
        assert set(results) == {((9, 1), (1, 3))}

    def test_allreduce_numpy_arrays(self, mpi_run, program):
        def body(mpi, comm):
            vec = np.full(8, comm.rank, dtype=np.float64)
            out = yield from comm.allreduce(vec, op=SUM)
            return out.tolist()

        results = mpi_run(4, program(body))
        assert all(r == [6.0] * 8 for r in results)

    def test_nonzero_root_reduce(self, mpi_run, program):
        def body(mpi, comm):
            return (yield from comm.reduce(1, op=SUM, root=2))

        results = mpi_run(5, program(body))
        assert results[2] == 5


class TestGatherScatter:
    @pytest.mark.parametrize("n", NPROCS)
    def test_gather(self, mpi_run, program, n):
        def body(mpi, comm):
            return (yield from comm.gather(comm.rank * 10, root=0))

        results = mpi_run(n, program(body))
        assert results[0] == [r * 10 for r in range(n)]

    @pytest.mark.parametrize("n", NPROCS)
    def test_scatter(self, mpi_run, program, n):
        def body(mpi, comm):
            values = [f"item{i}" for i in range(n)] if comm.rank == 1 else None
            return (yield from comm.scatter(values, root=1))

        assert mpi_run(n, program(body)) == [f"item{i}" for i in range(n)]

    def test_scatter_wrong_length_raises(self, mpi_run, program):
        from repro.ompi.errors import MPIErrArg

        def body(mpi, comm):
            if comm.rank == 0:
                try:
                    yield from comm.scatter([1, 2], root=0)  # size is 1
                except MPIErrArg:
                    return "rejected"
                return "accepted"
            return "n/a"

        # Only rank 0 participates meaningfully; others exit immediately.
        results = mpi_run(1, program(body), nodes=1)
        assert results == ["rejected"]


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("n", NPROCS)
    def test_allgather(self, mpi_run, program, n):
        def body(mpi, comm):
            return (yield from comm.allgather(comm.rank ** 2))

        results = mpi_run(n, program(body))
        expected = [r ** 2 for r in range(n)]
        assert all(r == expected for r in results)

    @pytest.mark.parametrize("n", NPROCS)
    def test_alltoall(self, mpi_run, program, n):
        def body(mpi, comm):
            out = yield from comm.alltoall([(comm.rank, j) for j in range(n)])
            return out

        results = mpi_run(n, program(body))
        for j, res in enumerate(results):
            assert res == [(i, j) for i in range(n)]


class TestScan:
    @pytest.mark.parametrize("n", NPROCS)
    def test_inclusive_scan(self, mpi_run, program, n):
        def body(mpi, comm):
            return (yield from comm.scan(comm.rank + 1, op=SUM))

        results = mpi_run(n, program(body))
        assert results == [sum(range(1, r + 2)) for r in range(n)]

    def test_exscan(self, mpi_run, program):
        def body(mpi, comm):
            return (yield from comm.exscan(comm.rank + 1, op=SUM))

        results = mpi_run(4, program(body))
        assert results == [None, 1, 3, 6]


class TestBarrier:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_nobody_leaves_before_last_arrives(self, mpi_run, program, n):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            yield Sleep(comm.rank * 50e-6)  # staggered arrivals
            arrived = mpi.engine.now
            yield from comm.barrier()
            released = mpi.engine.now
            return (arrived, released)

        results = mpi_run(n, program(body))
        last_arrival = max(a for a, _ in results)
        assert all(released >= last_arrival for _, released in results)

    def test_tree_barrier_used_for_large_comms(self, mpi_run):
        """Above barrier_linear_max, the binomial tree path runs."""
        from repro.ompi.config import MpiConfig

        def main(mpi):
            comm = yield from mpi.mpi_init()
            yield from comm.barrier()
            yield from mpi.mpi_finalize()
            return "ok"

        config = MpiConfig.baseline()
        config.barrier_linear_max = 4
        assert set(mpi_run(8, main, config=config)) == {"ok"}

    def test_ibarrier_overlaps_computation(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            req = yield from comm.ibarrier()
            # Do "work" while the barrier progresses in the background.
            yield Sleep(10e-6)
            yield from req.wait()
            return "done"

        assert set(mpi_run(4, program(body))) == {"done"}

    def test_ibarrier_incomplete_until_all_enter(self, mpi_run, program):
        def body(mpi, comm):
            from repro.simtime.process import Sleep

            if comm.rank == 0:
                req = yield from comm.ibarrier()
                yield Sleep(200e-6)
                done_before_everyone = req.test()[0]
                yield from req.wait()
                return done_before_everyone
            yield Sleep(500e-6)  # rank 1+ arrive late
            req = yield from comm.ibarrier()
            yield from req.wait()
            return None

        results = mpi_run(3, program(body))
        assert results[0] is False

"""ULFM-lite: revoke / agree / shrink, fence retry, session re-query
(docs/recovery.md)."""

from __future__ import annotations

import pytest

from repro.api import SimSpec, make_world
from repro.faults import FaultPlan
from repro.machine.presets import laptop
from repro.ompi.config import MpiConfig
from repro.ompi.constants import SUM
from repro.ompi.errors import ERRORS_RETURN, MPIError, MPIErrRevoked
from repro.simtime.process import Sleep
from tests.recovery.conftest import SIM_BOUND

pytestmark = pytest.mark.recovery

CONFIGS = {
    "consensus": MpiConfig.baseline,           # legacy CID agreement
    "excid": MpiConfig.sessions_prototype,     # PMIx-group context ids
}


def _world(ranks=6, nodes=3, config=None, seed=1):
    return make_world(spec=SimSpec(
        nprocs=ranks, machine=laptop(num_nodes=nodes), ppn=ranks // nodes,
        config=config, recovery=True, recovery_seed=seed))


def _spawn(world, gens):
    procs = []
    for rank, gen in enumerate(gens):
        sim = world.cluster.spawn(gen, name=f"rank{rank}")
        world.cluster.faults.register_rank_proc(world.job.proc(rank), sim)
        procs.append(sim)
    for p in procs:
        p.defuse()
    return procs


def _run(world):
    world.run()
    assert world.cluster.now < SIM_BOUND
    return world.cluster.now


class TestRevoke:
    def test_revoke_unblocks_pending_recv_everywhere(self):
        world = _world()
        outcomes = {}

        def blocked(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            try:
                yield from comm.recv(source=0, tag=7)   # never sent
                outcomes[mpi.rank_in_job] = "ok"
            except MPIErrRevoked:
                outcomes[mpi.rank_in_job] = "revoked"

        def revoker(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            yield Sleep(2e-3)                           # peers are blocked now
            comm.revoke()
            outcomes[mpi.rank_in_job] = "revoker"

        gens = [revoker(world.runtimes[0])]
        gens += [blocked(world.runtimes[r]) for r in range(1, world.num_ranks)]
        _spawn(world, gens)
        _run(world)
        assert outcomes[0] == "revoker"
        assert all(outcomes[r] == "revoked" for r in range(1, world.num_ranks))
        assert world.cluster.recovery_stats["revoke"] >= 1

    def test_revoked_comm_rejects_new_operations(self):
        world = _world()
        outcomes = {}

        def main(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            if mpi.rank_in_job == 0:
                comm.revoke()
            while not comm.revoked:
                yield Sleep(50e-6)
            try:
                yield from comm.allreduce(1, op=SUM)
                outcomes[mpi.rank_in_job] = "ok"
            except MPIErrRevoked:
                outcomes[mpi.rank_in_job] = "revoked"

        _spawn(world, [main(rt) for rt in world.runtimes])
        _run(world)
        assert all(v == "revoked" for v in outcomes.values())


class TestAgree:
    def test_agree_is_uniform_and_ands_contributions(self):
        world = _world()
        flags = {}

        def main(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            # Rank 1 contributes False: everyone must land on False.
            flags[mpi.rank_in_job] = yield from comm.agree(mpi.rank_in_job != 1)

        _spawn(world, [main(rt) for rt in world.runtimes])
        _run(world)
        assert set(flags) == set(range(world.num_ranks))
        assert set(flags.values()) == {False}

    def test_agree_tolerates_a_dead_member(self):
        world = _world()
        world.cluster.faults.install(FaultPlan().kill_proc(3, at_time=5e-3))
        flags = {}

        def victim(mpi):
            yield from mpi.mpi_init()
            yield Sleep(1.0)               # killed at 5ms

        def survivor(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            while not comm.failed_peers:
                yield Sleep(50e-6)
            flag = yield from comm.agree(True)
            flags[mpi.rank_in_job] = (flag, 3 in comm.failed_peers)

        gens = [victim(rt) if r == 3 else survivor(rt)
                for r, rt in enumerate(world.runtimes)]
        _spawn(world, gens)
        _run(world)
        survivors = [r for r in range(world.num_ranks) if r != 3]
        assert sorted(flags) == survivors
        # ULFM semantics: the dead member is excluded from the AND (it
        # lands in failed_peers), so the survivors' True flags prevail.
        assert set(flags.values()) == {(True, True)}
        assert world.cluster.recovery_stats["agree"] == len(survivors)


class TestShrink:
    @pytest.mark.parametrize("mode", sorted(CONFIGS))
    def test_shrink_builds_fresh_cid_over_survivors(self, mode):
        world = _world(config=CONFIGS[mode]())
        world.cluster.faults.install(FaultPlan().kill_proc(2, at_time=5e-3))
        out = {}

        def victim(mpi):
            yield from mpi.mpi_init()
            yield Sleep(1.0)

        def survivor(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            while not comm.failed_peers:
                yield Sleep(50e-6)
            comm.revoke()
            ok = yield from comm.agree(True)
            shrunk = yield from comm.shrink()
            total = yield from shrunk.allreduce(shrunk.rank, op=SUM)
            out[mpi.rank_in_job] = {
                "agree": ok,
                "size": shrunk.size,
                "cid": shrunk.local_cid,
                "world_cid": comm.local_cid,
                "sum": total,
            }

        gens = [victim(rt) if r == 2 else survivor(rt)
                for r, rt in enumerate(world.runtimes)]
        _spawn(world, gens)
        _run(world)
        survivors = [r for r in range(world.num_ranks) if r != 2]
        assert sorted(out) == survivors
        n = len(survivors)
        for rec in out.values():
            assert rec["size"] == n
            assert rec["cid"] != rec["world_cid"]      # fresh CID
            assert rec["sum"] == n * (n - 1) // 2
        # Consensus mode agrees on one CID value; excid mode only
        # guarantees a consistent *context*, so compare sizes there.
        if mode == "consensus":
            assert len({rec["cid"] for rec in out.values()}) == 1

    def test_shrink_without_damage_still_returns_fresh_comm(self):
        world = _world()
        out = {}

        def main(mpi):
            comm = yield from mpi.mpi_init()
            comm.set_errhandler(ERRORS_RETURN)
            shrunk = yield from comm.shrink()
            out[mpi.rank_in_job] = (shrunk.size, shrunk.local_cid != comm.local_cid)

        _spawn(world, [main(rt) for rt in world.runtimes])
        _run(world)
        assert all(v == (world.num_ranks, True) for v in out.values())


class TestFenceRetry:
    def test_fence_retry_prunes_dead_and_bumps_counter(self):
        world = _world()
        world.cluster.faults.install(FaultPlan().kill_proc(4, at_time=5e-3))
        out = {}

        def victim(mpi):
            yield from mpi.mpi_init()
            yield Sleep(1.0)

        def survivor(mpi):
            yield from mpi.mpi_init()
            yield Sleep(4e-3)              # past the kill + announcement
            result = yield from mpi.pmix.fence_retry()
            out[mpi.rank_in_job] = sorted(p.rank for p in result.data)

        gens = [victim(rt) if r == 4 else survivor(rt)
                for r, rt in enumerate(world.runtimes)]
        _spawn(world, gens)
        _run(world)
        survivors = [r for r in range(world.num_ranks) if r != 4]
        assert all(out[r] == survivors for r in survivors)
        assert world.cluster.dvm.fence_retries > 0


class TestSessionRequery:
    def test_re_query_psets_excludes_failed_procs(self):
        world = _world(config=MpiConfig.sessions_prototype())
        world.cluster.faults.install(FaultPlan().kill_proc(5, at_time=5e-3))
        out = {}

        def victim(mpi):
            yield from mpi.mpi_init()
            yield Sleep(1.0)

        def survivor(mpi):
            session = yield from mpi.session_init()
            while not mpi.failed_procs:
                yield Sleep(50e-6)
            before = yield from session.group_from_pset("mpi://world")
            names = yield from session.re_query_psets()
            after = yield from session.group_from_pset("mpi://world")
            comm = yield from mpi.comm_create_from_group(after, "survivors")
            total = yield from comm.allreduce(comm.rank, op=SUM)
            out[mpi.rank_in_job] = {
                "before": before.size,
                "names": names,
                "after": after.size,
                "sum": total,
            }
            yield from session.finalize()

        gens = [victim(rt) if r == 5 else survivor(rt)
                for r, rt in enumerate(world.runtimes)]
        _spawn(world, gens)
        _run(world)
        survivors = [r for r in range(world.num_ranks) if r != 5]
        n = len(survivors)
        assert sorted(out) == survivors
        for rec in out.values():
            assert rec["before"] == world.num_ranks    # static view pre-requery
            assert rec["after"] == n                   # survivors only
            assert "mpi://world" in rec["names"]
            assert rec["sum"] == n * (n - 1) // 2
        assert world.cluster.recovery_stats["pset_requery"] == n


class TestErrorTaxonomy:
    def test_err_revoked_is_a_typed_mpi_error(self):
        assert issubclass(MPIErrRevoked, MPIError)
        from repro.ompi.errors import _ERRCLASS_NAMES, ERR_REVOKED
        assert _ERRCLASS_NAMES[ERR_REVOKED] == "MPI_ERR_REVOKED"
        assert MPIErrRevoked("gone").errclass == ERR_REVOKED

"""Helpers shared by the fault-recovery test suite (docs/recovery.md)."""

from __future__ import annotations

from repro.cluster import Cluster
from repro.machine.presets import laptop

# Recovery scenarios may legitimately burn one 0.5 s collective timeout
# plus a retried fence, so the bounded-termination ceiling is higher
# than the faults suite's 2 s.
SIM_BOUND = 3.0


def boot(nodes: int = 4, ranks: int = 8, ppn: int | None = None,
         tracer=None, seed: int = 0):
    """A recovery-enabled cluster: reliable RML + healing grpcomm."""
    cluster = Cluster(machine=laptop(num_nodes=nodes), tracer=tracer,
                      recovery=True, recovery_seed=seed)
    job = cluster.launch(ranks, ppn=ppn or max(1, ranks // nodes))
    return cluster, job


def spawn_ranks(cluster, job, gens):
    """Spawn rank generators and register them with the FaultManager so
    kill actions terminate the right SimProcess."""
    procs = []
    for rank, gen in enumerate(gens):
        sim = cluster.spawn(gen, name=f"rank{rank}")
        cluster.faults.register_rank_proc(job.proc(rank), sim)
        procs.append(sim)
    for p in procs:
        p.defuse()
    return procs


def run_bounded(cluster):
    """Run to quiescence and enforce the bounded-termination contract."""
    cluster.run()
    assert cluster.now < SIM_BOUND, (
        f"recovery scenario overran the termination bound: t={cluster.now}"
    )
    return cluster.now

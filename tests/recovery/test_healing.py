"""Routing-tree self-healing and grpcomm restart (docs/recovery.md)."""

from __future__ import annotations

import pytest

from repro.obs.export import chrome_trace, dumps
from repro.simtime.process import Sleep
from repro.simtime.trace import Tracer
from tests.recovery.conftest import boot, run_bounded, spawn_ranks

pytestmark = pytest.mark.recovery


def _kill_after(cluster, node, delay):
    def driver():
        yield Sleep(delay)
        cluster.faults.kill_node(node)

    cluster.spawn(driver(), name="killer").defuse()


def _alive_daemons(cluster):
    return [d for d in cluster.dvm.daemons if d.alive]


class TestReparenting:
    def test_survivors_agree_on_the_healed_tree(self):
        """After a node death every survivor derives the same parent and
        child sets, with no election traffic: the healed tree is pure
        arithmetic over the sorted survivor list."""
        cluster, _job = boot(nodes=6, ranks=6, ppn=1)
        _kill_after(cluster, 2, 1e-3)
        run_bounded(cluster)

        alive = _alive_daemons(cluster)
        assert sorted(d.node for d in alive) == [0, 1, 3, 4, 5]
        for d in alive:
            assert d.known_down == {2}
            assert d.survivors() == [0, 1, 3, 4, 5]
        # Parent/child symmetry across independent derivations.
        for d in alive:
            parent = d.tree_parent()
            if d.node == 0:
                assert parent is None
            else:
                assert d.node in cluster.dvm.daemon_for(parent).tree_children()
        # Every survivor's parent chain terminates at the HNP.
        for d in alive:
            hops, n = 0, d
            while n.tree_parent() is not None:
                n = cluster.dvm.daemon_for(n.tree_parent())
                hops += 1
                assert hops <= len(alive)
            assert n.node == 0

    def test_heal_counter_counts_only_reparented_daemons(self):
        """radix-2 tree over [0..3]: parents are 1->0, 2->0, 3->1.
        Killing node 2 shifts node 3's index so its parent becomes 0 —
        exactly one daemon re-parents."""
        cluster, _job = boot(nodes=4, ranks=4, ppn=1)
        _kill_after(cluster, 2, 1e-3)
        run_bounded(cluster)
        heals = {d.node: d.heals for d in _alive_daemons(cluster)}
        assert heals == {0: 0, 1: 0, 3: 1}

    def test_reparenting_is_deterministic(self):
        def once():
            cluster, _job = boot(nodes=6, ranks=6, ppn=1, seed=4)
            _kill_after(cluster, 4, 1e-3)
            run_bounded(cluster)
            return (
                cluster.now,
                cluster.engine.events_executed,
                [(d.node, d.tree_parent(), tuple(d.tree_children()), d.heals)
                 for d in _alive_daemons(cluster)],
            )

        assert once() == once()

    def test_heal_emits_trace_event(self):
        tracer = Tracer()
        cluster, _job = boot(nodes=4, ranks=4, ppn=1, tracer=tracer)
        _kill_after(cluster, 2, 1e-3)
        run_bounded(cluster)
        blob = dumps(chrome_trace(tracer))
        assert '"recovery.heal"' in blob


class TestGrpcommRestart:
    def _fence_with_mid_flight_node_kill(self, tracer=None):
        """Kill node 2 while a fence is provably in flight: node 3's
        ranks straggle, so every other daemon's collective instance is
        open and waiting when the victim daemon dies at t=1ms."""
        cluster, job = boot(nodes=4, ranks=8, ppn=2, tracer=tracer)
        stragglers = {6, 7}                # node 3
        victims = {4, 5}                   # node 2 (killed)

        def rank_proc(rank):
            client = job.client(rank)
            yield from client.init()
            client.put("ep", f"ep-{rank}")
            yield from client.commit()
            if rank in stragglers:
                yield Sleep(2e-3)          # past the kill + announcement
            result = yield from client.fence_retry()
            return sorted(p.rank for p in result.data)

        procs = spawn_ranks(cluster, job,
                            [rank_proc(r) for r in range(job.num_ranks)])
        _kill_after(cluster, 2, 1e-3)
        run_bounded(cluster)
        survivors = [r for r in range(job.num_ranks) if r not in victims]
        return cluster, procs, survivors

    def test_fence_survives_daemon_death_mid_collective(self):
        cluster, procs, survivors = self._fence_with_mid_flight_node_kill()
        for r in survivors:
            p = procs[r]
            assert p.exception is None, f"rank {r}: {p.exception}"
            assert p.result == survivors
        # The in-flight instances were restarted over the healed tree.
        assert sum(d.grpcomm.restarts for d in cluster.dvm.daemons) > 0
        assert cluster.dvm.fence_retries > 0

    def test_restart_emits_trace_event(self):
        tracer = Tracer()
        cluster, procs, survivors = self._fence_with_mid_flight_node_kill(tracer)
        assert sum(d.grpcomm.restarts for d in cluster.dvm.daemons) > 0
        blob = dumps(chrome_trace(tracer))
        assert '"recovery.grpcomm.restart"' in blob
        assert '"recovery.pmix.fence_retry"' in blob


class TestPsetConvergence:
    def test_pset_membership_excludes_dead_node_procs(self):
        """After a node kill the servers evict the dead procs, so a
        post-failure pset query over the survivors converges on the
        reduced membership."""
        cluster, job = boot(nodes=4, ranks=8, ppn=2,
                            )
        victims = {4, 5}                   # node 2

        def rank_proc(rank):
            client = job.client(rank)
            yield from client.init()
            if rank in victims:
                yield Sleep(1.0)           # killed below
                return None
            # Outlive the kill + announcement, then re-fence.
            yield Sleep(5e-3)
            result = yield from client.fence_retry()
            return sorted(p.rank for p in result.data)

        procs = spawn_ranks(cluster, job,
                            [rank_proc(r) for r in range(job.num_ranks)])
        _kill_after(cluster, 2, 1e-3)
        run_bounded(cluster)
        survivors = [r for r in range(job.num_ranks) if r not in victims]
        for r in survivors:
            assert procs[r].exception is None, procs[r].exception
            assert procs[r].result == survivors

"""Recovery x observability: metrics harvest, trace export, zero
overhead when disabled (docs/recovery.md, docs/observability.md)."""

from __future__ import annotations

import pytest

from repro.obs.export import chrome_trace, dumps, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, snapshot_cluster
from repro.recovery import soak_run
from repro.simtime.trace import Tracer

pytestmark = [pytest.mark.recovery, pytest.mark.obs]


class TestMetricsHarvest:
    def test_snapshot_matches_soak_record(self):
        rec, world = soak_run(1, return_world=True)
        assert rec["ok"], rec["errors"]
        reg = MetricsRegistry()
        snapshot_cluster(reg, world.cluster, world)
        assert reg.value("recovery.rml.retransmits") == rec["retransmits"] > 0
        assert reg.value("recovery.heal.reparents") == rec["reparents"]
        assert reg.value("recovery.fence.retries") == rec["fence_retries"]
        assert reg.value("recovery.shrink") == rec["shrinks"] > 0
        assert reg.value("recovery.agree") == rec["agrees"]

    def test_non_recovery_snapshot_has_no_recovery_names(self):
        from repro.api import SimSpec, make_world
        from repro.machine.presets import laptop

        world = make_world(spec=SimSpec(
            nprocs=2, machine=laptop(num_nodes=2), ppn=1))

        def main(mpi):
            yield from mpi.mpi_init()

        world.spawn_ranks(main)
        world.run()
        reg = MetricsRegistry()
        snapshot_cluster(reg, world.cluster, world)
        assert not [n for n in reg.names() if n.startswith("recovery.")]


class TestTraceExport:
    def test_soak_trace_contains_recovery_spans(self):
        # Seed 3 hits the fence-retry path (an in-window fence sees
        # PROC_ABORTED), so every recovery span kind shows up at once.
        tracer = Tracer()
        rec = soak_run(3, tracer=tracer)
        assert rec["ok"], rec["errors"]
        assert rec["fence_retries"] > 0
        trace = chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        blob = dumps(trace)
        for name in ("recovery.rml.retransmit", "recovery.comm.revoke",
                     "recovery.comm.agree", "recovery.comm.shrink",
                     "recovery.heal", "recovery.pmix.fence_retry"):
            assert f'"{name}"' in blob, name


class TestZeroOverhead:
    def test_tracing_does_not_perturb_the_run(self):
        """The digest covers t_end and the executed-event count, so
        digest equality proves tracing is observation only."""
        assert soak_run(0)["digest"] == soak_run(0, tracer=Tracer())["digest"]

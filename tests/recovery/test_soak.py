"""Survivable chaos soak: every seeded run must recover (docs/recovery.md).

Each seed drives a full MPI job through a survivable fault plan — proc
kills, one node kill, a lossy RML link, message drop/delay/dup — and the
job must shrink around the damage and finish a correct allreduce over
the shrunk communicator, inside the simulated-time bound, with a
byte-deterministic outcome per seed.

The 20-seed sweep here is the tier-1 slice; ``tools/run_recovery.py``
runs the full 50-seed acceptance soak.
"""

from __future__ import annotations

import pytest

from repro.obs.export import chrome_trace, dumps
from repro.recovery import SIM_BOUND, digest, soak_run
from repro.simtime.trace import Tracer

pytestmark = pytest.mark.recovery


@pytest.mark.parametrize("seed", range(20))
def test_chaos_soak_survives(seed):
    rec = soak_run(seed)
    assert rec["ok"], rec["errors"]
    assert rec["bounded"] and rec["t_end"] < SIM_BOUND
    # The guaranteed lossy link means reliability really did work.
    assert rec["retransmits"] > 0
    # Survivors agreed, shrank to one size, and got fresh CIDs.
    assert rec["shrinks"] == rec["survivors"] > 0
    assert len(rec["shrunk_sizes"]) == 1
    assert rec["fresh_cids"]


def test_soak_deterministic_digest():
    a, b = soak_run(4), soak_run(4)
    assert a["digest"] == b["digest"]
    assert digest(a) == a["digest"]


def test_soak_trace_byte_identical():
    def once():
        tracer = Tracer()
        soak_run(6, tracer=tracer)
        return dumps(chrome_trace(tracer))

    assert once() == once()


def test_soak_message_faults_only():
    # No guaranteed node kill: message-layer chaos must also recover.
    rec = soak_run(11, with_node_kill=False)
    assert rec["ok"], rec["errors"]
    assert rec["retransmits"] > 0

"""Reliable RML: acks, retransmission, dedup, FIFO (docs/recovery.md).

The unit tests drive a :class:`RoutingLayer` directly with a scripted
fault stub for exact control over which transmission attempt is lost;
the integration test runs a real PMIx fence over a lossy link.
"""

from __future__ import annotations

import pytest

from repro.faults import Disposition, FaultPlan
from repro.machine.presets import laptop
from repro.prrte.rml import ACK_TAG, RmlMessage, RoutingLayer
from repro.simtime.engine import Engine
from tests.recovery.conftest import boot, run_bounded

pytestmark = pytest.mark.recovery


class _ScriptedFaults:
    """Fault-hook stub: drop/delay/duplicate scripted per data-message
    transmission attempt (acks pass through untouched)."""

    active = True

    def __init__(self, drop_attempts=(), delay=None, duplicate_attempts=()):
        self.drop_attempts = set(drop_attempts)
        self.delay = dict(delay or {})
        self.duplicate_attempts = set(duplicate_attempts)
        self.attempt = 0

    def daemon_alive(self, node):
        return True

    def dead_drop(self, layer, src, dst, fid=0):
        pass

    def on_message(self, layer, src, dst, tag, fid=0):
        if tag == ACK_TAG:
            return Disposition()
        n = self.attempt
        self.attempt += 1
        return Disposition(
            drop=n in self.drop_attempts,
            extra_delay=self.delay.get(n, 0.0),
            duplicates=1 if n in self.duplicate_attempts else 0,
        )


def _layer(faults=None, reliable=True, seed=0):
    engine = Engine()
    rml = RoutingLayer(engine, laptop(num_nodes=2))
    delivered = []
    rml.register(0, lambda m: delivered.append(("to0", m.tag, m.seq)))
    rml.register(1, lambda m: delivered.append((m.tag, m.payload.get("i"), m.seq)))
    if reliable:
        rml.enable_reliability(seed=seed)
    rml.faults = faults
    return engine, rml, delivered


def _data(i, payload=None):
    return RmlMessage(src=0, dst=1, tag="data", payload={"i": i, **(payload or {})})


class TestRetransmission:
    def test_dropped_message_is_retransmitted_and_delivered(self):
        engine, rml, delivered = _layer(_ScriptedFaults(drop_attempts={0}))
        rml.send(_data(0))
        engine.run()
        assert delivered == [("data", 0, 0)]
        assert rml.retransmits >= 1
        assert rml.dropped == 1
        assert rml.acks_sent == 1
        assert not rml._unacked

    def test_retry_budget_is_bounded(self):
        m = laptop(num_nodes=2)
        # Drop every data transmission: the original plus every retry.
        budget = m.rml_max_retries + 1
        engine, rml, delivered = _layer(_ScriptedFaults(drop_attempts=range(budget)))
        rml.send(_data(0))
        engine.run()
        assert delivered == []
        assert rml.retransmits == m.rml_max_retries
        assert rml.retry_exhausted == 1
        assert not rml._unacked
        # Full exponential backoff stays inside the collective timeout.
        assert engine.now < m.fault_collective_timeout

    def test_duplicate_is_suppressed_but_acked(self):
        engine, rml, delivered = _layer(_ScriptedFaults(duplicate_attempts={0}))
        rml.send(_data(0))
        engine.run()
        assert delivered == [("data", 0, 0)]
        assert rml.dup_suppressed == 1
        assert rml.acks_sent == 2          # every arrival acked, dups included

    def test_lost_ack_causes_one_redundant_retransmit(self):
        class _DropFirstAck(_ScriptedFaults):
            def __init__(self):
                super().__init__()
                self.acks_seen = 0

            def on_message(self, layer, src, dst, tag, fid=0):
                if tag == ACK_TAG:
                    self.acks_seen += 1
                    return Disposition(drop=self.acks_seen == 1)
                return Disposition()

        engine, rml, delivered = _layer(_DropFirstAck())
        rml.send(_data(0))
        engine.run()
        assert delivered == [("data", 0, 0)]    # handler saw it exactly once
        assert rml.retransmits == 1
        assert rml.dup_suppressed == 1
        assert not rml._unacked


class TestFifo:
    def test_retransmission_cannot_overtake_later_messages(self):
        """Drop message 0's first attempt while 1..4 sail through: the
        receiver must hold 1..4 until 0's retransmit lands, then hand
        all five to the daemon in sequence order."""
        engine, rml, delivered = _layer(_ScriptedFaults(drop_attempts={0}))
        for i in range(5):
            rml.send(_data(i))
        engine.run()
        assert [d[1] for d in delivered] == [0, 1, 2, 3, 4]
        assert [d[2] for d in delivered] == [0, 1, 2, 3, 4]

    def test_delayed_original_beaten_by_retransmit_still_fifo(self):
        """Delay attempt 0 far past the first retransmit: the link sees
        seq 0 twice (late original + retransmit) around seq 1; the
        daemon still sees exactly 0 then 1."""
        engine, rml, delivered = _layer(
            _ScriptedFaults(delay={0: 5.0e-3})
        )
        rml.send(_data(0))
        rml.send(_data(1))
        engine.run()
        assert [d[1] for d in delivered] == [0, 1]
        assert rml.dup_suppressed >= 1      # the late original copy

    def test_per_link_sequences_are_independent(self):
        engine, rml, delivered = _layer(None)
        rml.send(_data(0))
        rml.send(RmlMessage(src=1, dst=0, tag="data", payload={}))
        engine.run()
        assert rml._link_seq == {(0, 1): 1, (1, 0): 1}


class TestDisabledPath:
    def test_unreliable_layer_is_untouched(self):
        """Without enable_reliability() nothing is sequenced, acked or
        retransmitted — the pre-recovery wire behavior."""
        engine, rml, delivered = _layer(_ScriptedFaults(drop_attempts={0}),
                                        reliable=False)
        rml.send(_data(0))
        rml.send(_data(1))
        engine.run()
        assert [d[1] for d in delivered] == [1]     # the drop is final
        assert rml.retransmits == rml.acks_sent == rml.dup_suppressed == 0
        assert all(d[2] is None for d in delivered)


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        def once():
            engine, rml, delivered = _layer(_ScriptedFaults(drop_attempts={0, 3}),
                                            seed=42)
            for i in range(4):
                rml.send(_data(i))
            engine.run()
            return (engine.now, engine.events_executed, delivered,
                    rml.retransmits, rml.acks_sent, rml.dup_suppressed)

        assert once() == once()


class TestLossyFenceIntegration:
    def test_fence_completes_over_lossy_link(self):
        """A real PMIx fence across 4 nodes with a lossy RML layer: the
        retransmission layer absorbs every drop and the fence exchanges
        all blobs."""
        cluster, job = boot(seed=9)
        cluster.faults.install(
            FaultPlan().lossy_link(0.4, seed=9, layer="rml", max_hits=6)
        )

        def rank_proc(rank):
            client = job.client(rank)
            yield from client.init()
            client.put("ep", f"ep-{rank}")
            yield from client.commit()
            result = yield from client.fence()
            return sorted(p.rank for p in result.data)

        from tests.recovery.conftest import spawn_ranks
        procs = spawn_ranks(cluster, job,
                            [rank_proc(r) for r in range(job.num_ranks)])
        run_bounded(cluster)
        for p in procs:
            assert p.exception is None, p.exception
            assert p.result == list(range(job.num_ranks))
        assert cluster.dvm.rml.dropped > 0          # the link really lost traffic
        assert cluster.dvm.rml.retransmits >= cluster.dvm.rml.dropped

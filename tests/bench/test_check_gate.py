"""Tier-1 guard for the ``tools/bench.py --check`` regression gate.

The gate logic (``repro.bench.perf.check_regression``) is exercised on
canned report payloads — no wall-clock measurement, so the assertions
are exact — plus one end-to-end CLI pass over the smallest real case.
"""

from __future__ import annotations

import json

from repro.bench.perf import check_regression


def _report(**cases):
    return {"bench": "engine-fast-path", "mode": "full", "repeats": 3,
            "python": "3", "cases": cases}


def _case(speedup, events=100, params=None):
    params = params or {"procs": 8}
    return {"params": params, "events": events, "fast_s": 0.1,
            "compat_s": 0.1 * speedup, "fast_eps": events / 0.1,
            "compat_eps": events / (0.1 * speedup), "speedup": speedup,
            "min_speedup": None}


def test_gate_passes_when_equal():
    base = _report(a=_case(2.0), b=_case(1.2))
    assert check_regression(base, base) == []


def test_gate_passes_inside_tolerance():
    base = _report(a=_case(2.0))
    cur = _report(a=_case(1.7))   # -15% with 20% tolerance
    assert check_regression(cur, base, tolerance=0.2) == []


def test_gate_fails_past_tolerance():
    base = _report(a=_case(2.0))
    cur = _report(a=_case(1.5))   # -25% with 20% tolerance
    failures = check_regression(cur, base, tolerance=0.2)
    assert len(failures) == 1 and "a:" in failures[0]
    # A looser tolerance admits the same report.
    assert check_regression(cur, base, tolerance=0.3) == []


def test_gate_fails_on_event_drift_at_same_params():
    base = _report(a=_case(2.0, events=100))
    cur = _report(a=_case(2.0, events=101))
    failures = check_regression(cur, base)
    assert len(failures) == 1
    assert "determinism" in failures[0]


def test_gate_skips_event_check_when_params_differ():
    base = _report(a=_case(2.0, events=100, params={"procs": 8}))
    cur = _report(a=_case(2.0, events=9999, params={"procs": 64}))
    assert check_regression(cur, base) == []


def test_gate_fails_on_missing_case():
    base = _report(a=_case(2.0), b=_case(1.5))
    cur = _report(a=_case(2.0))
    failures = check_regression(cur, base)
    assert len(failures) == 1 and failures[0].startswith("b:")


def test_gate_ignores_cases_added_since_baseline():
    base = _report(a=_case(2.0))
    cur = _report(a=_case(2.0), brand_new=_case(0.1))
    assert check_regression(cur, base) == []


def _partitioned_case(speedup, events=100, cores=1, params=None,
                      min_speedup=2.0):
    params = params or {"nodes": 16, "ppn": 4, "partitions": 4}
    return {"kind": "partitioned", "params": params, "events": events,
            "partitions": params["partitions"], "cores": cores,
            "windows": 10, "boundary_msgs": 5, "serial_s": 0.1 * speedup,
            "partitioned_s": 0.1, "serial_eps": events / (0.1 * speedup),
            "partitioned_eps": events / 0.1, "speedup": speedup,
            "min_speedup": min_speedup,
            "enforced": (min_speedup is not None
                         and cores >= params["partitions"])}


def test_gate_fails_on_kind_change():
    # A case that silently switched measurement axes (scheduler
    # fast-vs-compat -> serial-vs-partitioned) must not have its
    # speedups compared as if they meant the same thing.
    base = _report(a=_case(2.0))
    cur = _report(a=_partitioned_case(0.1))
    failures = check_regression(cur, base)
    assert len(failures) == 1 and "kind" in failures[0]


def test_gate_compares_partitioned_like_for_like():
    base = _report(a=_partitioned_case(0.8, cores=4))
    cur = _report(a=_partitioned_case(0.7, cores=4))   # -12.5%, inside 20%
    assert check_regression(cur, base) == []
    cur = _report(a=_partitioned_case(0.5, cores=4))   # -37.5%
    failures = check_regression(cur, base)
    assert len(failures) == 1 and "speedup" in failures[0]


def test_gate_skips_partitioned_speedup_across_core_counts():
    # A 4-core baseline rerun on a 1-core host: the wall-clock ratio is
    # a property of the machine, so the gate keeps only the
    # deterministic checks (events, coverage).
    base = _report(a=_partitioned_case(2.4, cores=4))
    cur = _report(a=_partitioned_case(0.7, cores=1))
    assert check_regression(cur, base) == []
    # ... but event drift still fails across core counts.
    cur = _report(a=_partitioned_case(0.7, cores=1, events=101))
    failures = check_regression(cur, base)
    assert len(failures) == 1 and "determinism" in failures[0]


def _fleet_case(speedup, events=48, cores=1, shards=2, params=None,
                min_speedup=1.5):
    params = params or {"shards": shards, "requests": 48, "clients": 4,
                        "workers": 1, "nprocs": 2, "seed": 0,
                        "repeat_every": 4}
    return {"kind": "fleet", "params": params, "shards": shards,
            "cores": cores, "events": events, "single_s": 0.1 * speedup,
            "fleet_s": 0.1, "speedup": speedup,
            "balance": {"routed": {"0": events}, "max_over_mean": 1.0},
            "dedup": {"coalesced": 0, "hit_rate": 0.0},
            "hot": {"hits": 0, "misses": events, "hit_rate": 0.0,
                    "evictions": 0},
            "throughput_rps": events / 0.1, "min_speedup": min_speedup,
            "enforced": min_speedup is not None and cores >= shards}


def test_gate_compares_fleet_like_for_like():
    base = _report(a=_fleet_case(1.6, cores=4))
    cur = _report(a=_fleet_case(1.4, cores=4))    # -12.5%, inside 20%
    assert check_regression(cur, base) == []
    cur = _report(a=_fleet_case(0.9, cores=4))    # -44%
    failures = check_regression(cur, base)
    assert len(failures) == 1 and "speedup" in failures[0]


def test_gate_skips_fleet_speedup_across_core_counts():
    # Fleet scaling is a property of the host's parallelism, exactly
    # like the partitioned cases: a 4-core baseline rechecked on 1 core
    # keeps only the deterministic checks.
    base = _report(a=_fleet_case(1.8, cores=4))
    cur = _report(a=_fleet_case(0.6, cores=1))
    assert check_regression(cur, base) == []
    cur = _report(a=_fleet_case(0.6, cores=1, events=47))
    failures = check_regression(cur, base)
    assert len(failures) == 1 and "determinism" in failures[0]


def test_gate_skips_unenforced_scaling_speedups():
    # Un-enforced records (no bar, or a host that cannot actually run
    # the shards/partitions in parallel) track the trajectory honestly
    # but their sub-second wall-clock ratios are noise: a 1-core CI box
    # re-gating its own committed fleet report must not flake.
    base = _report(a=_fleet_case(1.2, cores=1))        # 1 < shards=2
    cur = _report(a=_fleet_case(0.6, cores=1))
    assert check_regression(cur, base) == []
    base = _report(a=_fleet_case(1.2, cores=1, min_speedup=None, shards=1))
    cur = _report(a=_fleet_case(0.6, cores=1, min_speedup=None, shards=1))
    assert check_regression(cur, base) == []
    base = _report(a=_partitioned_case(2.4, cores=2))  # 2 < partitions=4
    cur = _report(a=_partitioned_case(0.5, cores=2))
    assert check_regression(cur, base) == []
    # ... while the deterministic checks still bind for all of them.
    cur = _report(a=_partitioned_case(0.5, cores=2, events=101))
    failures = check_regression(cur, base)
    assert len(failures) == 1 and "determinism" in failures[0]


def test_fleet_smoke_two_shards_in_process():
    """Tier-1 fleet smoke: one real 2-shard bench point, small enough
    for a 1-core box, checked for shape and the routing invariants."""
    from repro.serve.loadgen import run_fleet_case

    rec = run_fleet_case(2, requests=8, clients=2, nprocs=2)
    assert rec["kind"] == "fleet" and rec["shards"] == 2
    assert rec["events"] == 8                 # every request answered ok
    assert sum(rec["balance"]["routed"].values()) == 8
    assert rec["speedup"] > 0
    assert rec["enforced"] is False           # no bar requested
    # sim_workload repeats every 4th point: the repeat either hits the
    # shared hot tier or coalesces in flight on its owner shard.
    assert rec["hot"]["hits"] + rec["dedup"]["coalesced"] >= 1
    # The record gates cleanly against itself.
    assert check_regression(_report(f2=rec), _report(f2=rec)) == []


def test_committed_bench_pr10_is_self_consistent():
    """The committed BENCH_PR10.json gates cleanly against itself and
    carries the 1/2/4-shard trajectory with core-count context."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "BENCH_PR10.json")
    committed = json.loads(open(path).read())
    assert check_regression(committed, committed) == []
    assert set(committed["cases"]) == {"fleet-1", "fleet-2", "fleet-4"}
    for name, rec in committed["cases"].items():
        assert rec["kind"] == "fleet"
        assert rec["shards"] == int(name.split("-")[1])
        assert rec["events"] > 0
        assert sum(rec["balance"]["routed"].values()) == rec["events"]
        # The scaling bar binds only when the host could actually run
        # the shards in parallel; the record says which it was.
        assert rec["enforced"] == (rec["min_speedup"] is not None
                                   and rec["cores"] >= rec["shards"])
    assert committed["cases"]["fleet-4"]["min_speedup"] is not None


def test_committed_bench_pr9_is_self_consistent():
    """The committed BENCH_PR9.json gates cleanly against itself and
    carries the partitioned cases with their core-count context."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "BENCH_PR9.json")
    committed = json.loads(open(path).read())
    assert check_regression(committed, committed) == []
    for name in ("fig3-init-1k-p4", "fig3-init-4k"):
        rec = committed["cases"][name]
        assert rec["kind"] == "partitioned"
        assert rec["partitions"] == 4
        assert rec["cores"] >= 1
        assert rec["windows"] > 0
        # The >=2x bar binds only when the host could actually run the
        # partitions in parallel; the record says which it was.
        assert rec["enforced"] == (rec["min_speedup"] is not None
                                   and rec["cores"] >= rec["partitions"])
    assert committed["cases"]["fig3-init-1k-p4"]["events"] \
        == committed["cases"]["fig3-init-1k"]["events"]


def test_cli_check_roundtrip(tmp_path):
    """End-to-end: a real quick run gated against its own output passes;
    a doctored baseline demanding an impossible speedup fails."""
    from tools.bench import main

    out = tmp_path / "fresh.json"
    baseline = tmp_path / "baseline.json"
    argv = ["--quick", "--repeats", "1", "--cases", "comm-dup",
            "--out", str(out)]
    assert main(argv) == 0
    report = json.loads(out.read_text())

    # Wall-clock speedups are noisy run-to-run; floor the committed
    # speedup so the pass verdict only depends on the deterministic
    # checks (event counts at identical params, case coverage).
    relaxed = json.loads(json.dumps(report))
    relaxed["cases"]["comm-dup"]["speedup"] = 0.01
    baseline.write_text(json.dumps(relaxed))
    assert main(argv + ["--check", str(baseline)]) == 0

    doctored = json.loads(out.read_text())
    doctored["cases"]["comm-dup"]["speedup"] = 1000.0
    baseline.write_text(json.dumps(doctored))
    assert main(argv + ["--check", str(baseline)]) == 1

    assert main(argv + ["--check", str(tmp_path / "missing.json")]) == 2

"""Sanity tests of the OSU/HPCC ports at tiny scale (the full paper
sweeps live in benchmarks/)."""

import pytest

from repro.bench.hpcc import hpcc_ring_latency
from repro.bench.osu import InitTiming, osu_comm_dup, osu_init, osu_latency, osu_mbw_mr
from repro.machine.presets import laptop


class TestOsuInit:
    def test_world_mode_fields(self):
        t = osu_init(2, 2, "world", machine_factory=laptop)
        assert isinstance(t, InitTiming)
        assert t.total > 0
        assert t.handle == 0.0 and t.comm_construct == 0.0

    def test_sessions_mode_breakdown_positive(self):
        t = osu_init(2, 2, "sessions", machine_factory=laptop)
        assert t.total > 0
        assert t.handle > 0
        assert t.comm_construct > 0
        assert t.handle + t.comm_construct < t.total

    def test_sessions_costs_more_than_world(self):
        base = osu_init(2, 4, "world", machine_factory=laptop)
        sess = osu_init(2, 4, "sessions", machine_factory=laptop)
        assert sess.total > base.total

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            osu_init(1, 1, "bogus", machine_factory=laptop)


class TestOsuDup:
    def test_sessions_dup_slower(self):
        base = osu_comm_dup(2, 4, "world", iterations=5, machine_factory=laptop)
        sess = osu_comm_dup(2, 4, "sessions", iterations=5, machine_factory=laptop)
        assert sess > base > 0

    def test_subfield_policy_cheaper(self):
        per_dup = osu_comm_dup(2, 4, "sessions", iterations=5, machine_factory=laptop)
        amortized = osu_comm_dup(
            2, 4, "sessions", iterations=5, machine_factory=laptop, dup_policy="subfield"
        )
        assert amortized < per_dup


class TestOsuLatency:
    def test_latency_monotone_in_size(self):
        lats = osu_latency("world", sizes=(8, 65536), machine=laptop(1),
                           skip=2, iterations=5)
        assert lats[65536] > lats[8] > 0

    def test_sessions_close_to_world(self):
        sizes = (8,)
        base = osu_latency("world", sizes=sizes, machine=laptop(1), skip=2, iterations=10)
        sess = osu_latency("sessions", sizes=sizes, machine=laptop(1), skip=2, iterations=10)
        assert sess[8] == pytest.approx(base[8], rel=0.1)


class TestOsuMbwMr:
    def test_bandwidth_grows_with_size(self):
        out = osu_mbw_mr("world", pairs=2, sizes=(8, 4096), machine=laptop(1),
                         window=8, iterations=2)
        assert out[4096][0] > out[8][0]

    def test_rate_and_bw_consistent(self):
        out = osu_mbw_mr("world", pairs=1, sizes=(64,), machine=laptop(1),
                         window=8, iterations=2)
        bw, mr = out[64]
        assert bw == pytest.approx(mr * 64)

    def test_too_many_pairs_rejected(self):
        with pytest.raises(ValueError):
            osu_mbw_mr("world", pairs=64, machine=laptop(1))


class TestHpcc:
    def test_natural_ring_positive(self):
        lat = hpcc_ring_latency(2, 2, "world", "natural", iterations=3,
                                machine_factory=laptop)
        assert lat > 0

    def test_sessions_matches_world(self):
        base = hpcc_ring_latency(2, 2, "world", "natural", iterations=3,
                                 machine_factory=laptop)
        sess = hpcc_ring_latency(2, 2, "sessions", "natural", iterations=3,
                                 machine_factory=laptop)
        assert sess == pytest.approx(base, rel=0.1)

    def test_random_deterministic_given_seed(self):
        a = hpcc_ring_latency(2, 2, "world", "random", iterations=3,
                              machine_factory=laptop, seed=1)
        b = hpcc_ring_latency(2, 2, "world", "random", iterations=3,
                              machine_factory=laptop, seed=1)
        assert a == b

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            hpcc_ring_latency(1, 2, "world", "sideways")


class TestOsuBw:
    def test_bandwidth_saturates(self):
        from repro.bench.osu import osu_bw
        from repro.machine.presets import laptop

        bw = osu_bw("world", sizes=(64, 1 << 20), machine=laptop(1))
        assert bw[1 << 20] > bw[64]
        # Large-message bandwidth approaches the link rate.
        assert bw[1 << 20] > 0.5 * laptop(1).intra_node_bandwidth

    def test_sessions_matches_world_steady_state(self):
        from repro.bench.osu import osu_bw
        from repro.machine.presets import laptop
        import pytest as _pytest

        base = osu_bw("world", sizes=(4096,), machine=laptop(1))
        sess = osu_bw("sessions", sizes=(4096,), machine=laptop(1))
        assert sess[4096] == _pytest.approx(base[4096], rel=0.1)

"""Unit tests for the benchmark harness containers."""

import pytest

from repro.bench.harness import BenchResult, Series, format_table, geometric_mean


class TestSeries:
    def test_add_and_access(self):
        s = Series("x")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.xs() == [1, 2]
        assert s.ys() == [10.0, 20.0]
        assert s.y_at(2) == 20.0

    def test_y_at_missing_raises(self):
        with pytest.raises(KeyError):
            Series("x").y_at(1)


class TestBenchResult:
    def test_series_for_creates_once(self):
        res = BenchResult(exp_id="t", title="t")
        a = res.series_for("a")
        assert res.series_for("a") is a

    def test_ratio(self):
        res = BenchResult(exp_id="t", title="t")
        res.series_for("num").add(1, 10.0)
        res.series_for("num").add(2, 30.0)
        res.series_for("den").add(1, 5.0)
        res.series_for("den").add(2, 10.0)
        assert res.ratio("num", "den") == [(1, 2.0), (2, 3.0)]

    def test_render_contains_everything(self):
        res = BenchResult(exp_id="figX", title="A Title")
        res.series_for("line").add(4, 1.5)
        res.notes.append("a note")
        text = res.render(unit="s")
        assert "figX" in text and "A Title" in text
        assert "line [s]" in text
        assert "1.5" in text
        assert "a note" in text

    def test_render_handles_missing_points(self):
        res = BenchResult(exp_id="t", title="t")
        res.series_for("a").add(1, 1.0)
        res.series_for("b").add(2, 2.0)
        assert "-" in res.render()


def test_format_table_aligns():
    text = format_table(["col", "c2"], [["x", "yyyy"], ["zzz", "w"]])
    lines = text.splitlines()
    assert len({len(l) for l in lines}) == 1  # all rows same width


def test_geometric_mean():
    assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])


class TestCsvExport:
    def test_to_csv_shape(self):
        res = BenchResult(exp_id="t", title="t")
        res.series_for("a").add(1, 1.5)
        res.series_for("a").add(2, 2.5)
        res.series_for("b").add(1, 9.0)
        csv = res.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,1.5,9.0"
        assert lines[2].startswith("2,2.5,")  # missing b cell is empty
        assert lines[2].endswith(",")

    def test_cli_csv_flag(self, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "fig.csv"
        proc = subprocess.run(
            [sys.executable, "tools/run_figure.py", "fig6b", "--csv", str(out)],
            capture_output=True, text=True, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert out.exists()
        assert out.read_text().startswith("x,MPI_Init,Sessions")

"""Tier-1 smoke guard over the perf-bench kernels.

The real >= 2x acceptance bars live in ``benchmarks/test_perf.py``
(marked ``bench``, excluded from tier-1).  This quick-mode guard only
catches a catastrophic fast-path regression — the fast scheduler
falling to less than half the reference's throughput — while staying
cheap and tolerant of CI timing noise (one retry before failing).
"""

from __future__ import annotations

from repro.bench.perf import CASES, run_case

_KERNELS = {c.name: c for c in CASES}


def _speedup(case) -> float:
    return run_case(case, quick=True, repeats=2)["speedup"]


def test_kernels_not_catastrophically_slower():
    for name in ("fence-storm", "comm-dup"):
        case = _KERNELS[name]
        speedup = _speedup(case)
        if speedup < 0.5:   # quick scales are noisy: re-measure once
            speedup = _speedup(case)
        assert speedup >= 0.5, (
            f"{name}: fast path at {speedup:.2f}x of compat — "
            f"worse than half the reference scheduler's throughput"
        )


def test_kernel_event_counts_match_compat():
    """Determinism cross-check at smoke scale: run_case raises if the
    fast and compat engines execute different event counts."""
    for case in CASES:
        if case.min_speedup is not None:
            rec = run_case(case, quick=True, repeats=1)
            assert rec["events"] > 0


def test_partitioned_case_smoke():
    """Quick-scale partitioned case: the measurement machinery raises
    if serial and dsim event counts diverge, and the record carries the
    core-count context the acceptance bar is conditioned on."""
    import os

    from repro.bench.perf import PARTITIONED_CASES, run_partitioned_case

    case = next(c for c in PARTITIONED_CASES if c.name == "fig3-init-1k-p4")
    rec = run_partitioned_case(case, quick=True, repeats=1)
    assert rec["kind"] == "partitioned"
    assert rec["events"] > 0 and rec["windows"] > 0
    assert rec["cores"] == (os.cpu_count() or 1)
    assert rec["enforced"] == (rec["cores"] >= rec["partitions"])

"""Large-scale fig3-init benches (1k-4k simulated ranks).

Marked ``slow``: excluded from tier-1 by the default ``-m "not slow"``
addopts; run with ``pytest -m slow tests/bench/test_fig3_scale.py``.
Each point runs the full Sessions-init stack fast and compat once and
holds the determinism contract (identical logical event counts) plus a
sanity floor on fast-path throughput at scale.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.perf import fig3_init_1k

pytestmark = [pytest.mark.slow, pytest.mark.bench]


@pytest.mark.parametrize(
    "nodes,ppn",
    [(64, 16),    # 1024 ranks — the committed BENCH_PR6 point
     (128, 32)],  # 4096 ranks — the top of the ISSUE's scale band
    ids=["1k-ranks", "4k-ranks"],
)
def test_fig3_init_at_scale(nodes, ppn):
    t0 = time.perf_counter()
    ev_fast = fig3_init_1k(False, nodes=nodes, ppn=ppn)
    t_fast = time.perf_counter() - t0
    ev_compat = fig3_init_1k(True, nodes=nodes, ppn=ppn)
    assert ev_fast == ev_compat, (
        f"event counts diverged at {nodes}x{ppn}: "
        f"fast={ev_fast} compat={ev_compat}"
    )
    assert ev_fast > nodes * ppn  # the run actually exercised every rank
    # Throughput floor: catastrophic scaling regressions (the fast path
    # falling to interpreter-loop speeds) trip this long before the
    # committed-trajectory gate sees a new BENCH file.
    assert ev_fast / t_fast > 500, (
        f"fig3-init at {nodes}x{ppn}: {ev_fast / t_fast:,.0f} ev/s"
    )
